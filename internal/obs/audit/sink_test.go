package audit

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFileSinkWritesJSONL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.jsonl")
	s, err := NewFileSink(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	events := []Event{
		{Seq: 1, Kind: KindPermission, Verdict: VerdictDeny, App: "mal", Corr: 9, Detail: "token not granted"},
		{Seq: 2, Kind: KindFlowMod, Verdict: VerdictSent, App: "mal", Corr: 9, DPID: 3},
	}
	for _, ev := range events {
		if err := s.Write(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	var got []Event
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		got = append(got, ev)
	}
	if len(got) != 2 || got[0].Detail != "token not granted" || got[1].DPID != 3 {
		t.Fatalf("round-trip mismatch: %+v", got)
	}
}

func TestFileSinkRotatesAtSizeBound(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.jsonl")
	s, err := NewFileSink(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := s.Write(Event{Seq: uint64(i + 1), Kind: KindFault, Verdict: VerdictInjected, Detail: "drop"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if s.Rotations() == 0 {
		t.Fatal("expected at least one rotation")
	}
	for _, p := range []string{path, path + ".1"} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("stat %s: %v", p, err)
		}
		// A single line may overflow the bound slightly; 2× is the cap.
		if st.Size() > 512 {
			t.Fatalf("%s is %d bytes, bound 256", p, st.Size())
		}
	}
}

func TestFileSinkWriteAfterCloseFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.jsonl")
	s, err := NewFileSink(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(Event{Kind: KindFault}); err == nil {
		t.Fatal("write after close should fail")
	}
}

func TestJournalSinkIntegration(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.jsonl")
	s, err := NewFileSink(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	j := NewJournal(JournalConfig{})
	j.AttachSink(s)
	j.Emit(Event{Kind: KindApp, Verdict: VerdictQuarantine, App: "mal"})
	j.DrainNow()
	j.DetachSink()
	j.Emit(Event{Kind: KindApp, Verdict: VerdictRestart, App: "mal"})
	j.DrainNow()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	if !strings.Contains(text, `"quarantine"`) {
		t.Fatalf("sink missing attached-phase event: %q", text)
	}
	if strings.Contains(text, `"restart"`) {
		t.Fatalf("sink received event after detach: %q", text)
	}
}
