package audit

import (
	"bufio"
	"encoding/json"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSlowConsumerNeverBlocksProducers stalls the drain pipeline with a
// consumer blocked mid-event — the /audit/stream pathology, a reader
// that stops reading — and asserts the producer side keeps its
// contract: Emit returns promptly no matter how full the pipeline is,
// and every produced event is accounted as either emitted or dropped.
func TestSlowConsumerNeverBlocksProducers(t *testing.T) {
	j := NewJournal(JournalConfig{Shards: 1, ShardBuffer: 16, History: 128})
	j.Start()
	defer j.Stop()

	release := make(chan struct{})
	var stalled sync.Once
	j.AddConsumer(func(Event) {
		stalled.Do(func() { <-release }) // wedge the drain on the first event
	})

	const producers = 4
	const perProducer = 250
	var wg sync.WaitGroup
	var slowEmits atomic.Uint64
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				start := time.Now()
				j.Emit(Event{Kind: KindPermission, Verdict: VerdictDeny, App: "flooder"})
				// Emit against a wedged pipeline must stay a
				// buffer append or a counted drop, never a wait.
				if time.Since(start) > 100*time.Millisecond {
					slowEmits.Add(1)
				}
			}
		}()
	}
	emitsDone := make(chan struct{})
	go func() { wg.Wait(); close(emitsDone) }()
	select {
	case <-emitsDone:
	case <-time.After(10 * time.Second):
		t.Fatal("producers blocked behind the stalled consumer")
	}
	if n := slowEmits.Load(); n > 0 {
		t.Fatalf("%d Emit calls took >100ms against a stalled pipeline", n)
	}

	total := uint64(producers * perProducer)
	if got := j.Emitted() + j.Drops(); got != total {
		t.Fatalf("emitted(%d) + dropped(%d) = %d, want every produced event accounted (%d)",
			j.Emitted(), j.Drops(), got, total)
	}
	if j.Drops() == 0 {
		t.Fatal("expected drops with a 16-event shard and a wedged drain")
	}

	close(release)
	j.Flush()

	// The HTTP surface reports the same exact drop count.
	h := Handler(j)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/audit?app=flooder", nil))
	var resp struct {
		Emitted uint64  `json:"emitted"`
		Dropped uint64  `json:"dropped"`
		Events  []Event `json:"events"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Dropped != j.Drops() || resp.Emitted != j.Emitted() {
		t.Fatalf("/audit reports emitted=%d dropped=%d, journal says %d/%d",
			resp.Emitted, resp.Dropped, j.Emitted(), j.Drops())
	}
	if len(resp.Events) == 0 {
		t.Fatal("/audit returned no events after the pipeline drained")
	}
}

// TestAuditStreamSlowReaderDropsAreVisible drives /audit/stream with a
// client that tails from a stale cursor after the history was flooded
// past shard capacity: the stream returns what survived, and the drop
// counter (not silence) accounts for the rest.
func TestAuditStreamSlowReaderDropsAreVisible(t *testing.T) {
	j := NewJournal(JournalConfig{Shards: 1, ShardBuffer: 8, History: 32})
	// Not started: drains run deterministically via DrainNow.
	for i := 0; i < 64; i++ {
		j.Emit(Event{Kind: KindFlowMod, Verdict: VerdictSent, App: "bursty"})
		if i%8 == 7 {
			j.DrainNow()
		}
	}
	j.DrainNow()
	if j.Drops() != 0 {
		t.Fatalf("paced emits dropped %d events", j.Drops())
	}
	// A burst past the shard bound while nothing drains: the slow half
	// of the pipeline. Every overflow event must land in Drops().
	for i := 0; i < 64; i++ {
		j.Emit(Event{Kind: KindFlowMod, Verdict: VerdictSent, App: "bursty"})
	}
	if j.Drops() != 64-8 {
		t.Fatalf("drops = %d, want %d", j.Drops(), 64-8)
	}
	j.DrainNow()

	srv := httptest.NewServer(Handler(j))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/audit/stream?after=0&wait=0&app=bursty")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	var got int
	var lastSeq uint64
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad stream line: %v", err)
		}
		if ev.Seq <= lastSeq {
			t.Fatalf("stream out of order: seq %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		got++
	}
	// History holds 32; the slow reader sees exactly what was retained.
	if got != 32 {
		t.Fatalf("stream returned %d events, want the 32 retained", got)
	}
	cursor, err := strconv.ParseUint(resp.Header.Get("X-Audit-Cursor"), 10, 64)
	if err != nil || cursor != lastSeq {
		t.Fatalf("cursor header = %q, want %d", resp.Header.Get("X-Audit-Cursor"), lastSeq)
	}
	if j.Emitted()+j.Drops() != 128 {
		t.Fatalf("emitted(%d)+dropped(%d) != 128", j.Emitted(), j.Drops())
	}
}
