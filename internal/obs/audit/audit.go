// Package audit is SDNShield's forensic event pipeline — the third
// protection level of §VII made operational. Where internal/obs answers
// "how much / how fast", audit answers "which app, through which
// permission check, caused this switch-side effect?": every layer of the
// stack emits typed security events (permission decisions, transaction
// outcomes, app lifecycle transitions, switch session changes,
// reconciliation verdicts, fault injections) into a bounded, asynchronous
// journal, and a correlation ID minted at the mediated-call boundary ties
// a wire-level flow-mod back to the app call and permission decision that
// produced it.
//
// The emit path is built for the mediated-call hot path: producers append
// into striped bounded buffers under per-shard mutexes and never block —
// when a shard is full the event is counted as dropped instead. A single
// drain goroutine merges the shards in sequence order into a queryable
// history ring, feeds registered consumers (the denial-rate anomaly
// detector, the optional JSONL file sink) and wakes /audit/stream
// long-pollers.
//
// Like obs, audit imports nothing from the rest of the repo (only obs
// itself); every other layer imports audit, never the reverse.
package audit

import (
	"sync/atomic"
	"time"
)

// Kind classifies an audit event by the subsystem and action it records.
type Kind string

// Event kinds.
const (
	// KindPermission is a permission-engine decision (allow or deny).
	KindPermission Kind = "permission"
	// KindFlowMod is a flow-table mutation reaching the wire.
	KindFlowMod Kind = "flow_mod"
	// KindPacketOut is a packet injection reaching the wire.
	KindPacketOut Kind = "packet_out"
	// KindTx is an API-call transaction outcome.
	KindTx Kind = "tx"
	// KindApp is an app lifecycle transition (panic/restart/quarantine).
	KindApp Kind = "app_lifecycle"
	// KindSwitch is a switch session transition.
	KindSwitch Kind = "switch"
	// KindReconcile is a policy reconciliation verdict.
	KindReconcile Kind = "reconcile"
	// KindFault is an injected fault from the fault-injection harness.
	KindFault Kind = "fault"
	// KindMarket is an app-market lifecycle event (submit/install/
	// approve/upgrade/revoke/rollback); Op names the operation.
	KindMarket Kind = "market"
	// KindResource is a per-app resource-accounting event (soft quota
	// breach); Op names the breached budget dimension.
	KindResource Kind = "resource"
	// KindJob is a durable job-queue lifecycle event (enqueue/done/
	// retry/dead); Op names the queue.
	KindJob Kind = "job"
	// KindFederation is a market replication/federation transfer event:
	// a release pulled from an upstream registry and re-verified (or
	// rejected) locally; Op names the sync mode.
	KindFederation Kind = "federation"
	// KindSLO is a service-level objective state transition (an error
	// budget entering or leaving fast burn); Op names the objective.
	KindSLO Kind = "slo"
)

// Verdict is the outcome an event records.
type Verdict string

// Event verdicts, by kind: permission events carry allow/deny; flow_mod
// and packet_out carry sent/send_failed; tx carries
// commit/abort/rollback; app_lifecycle carries panic/restart/quarantine;
// switch carries connect/disconnect/retry_exhausted; reconcile carries
// clean/violation; fault carries injected.
const (
	VerdictAllow          Verdict = "allow"
	VerdictDeny           Verdict = "deny"
	VerdictSent           Verdict = "sent"
	VerdictSendFailed     Verdict = "send_failed"
	VerdictCommit         Verdict = "commit"
	VerdictAbort          Verdict = "abort"
	VerdictRollback       Verdict = "rollback"
	VerdictPanic          Verdict = "panic"
	VerdictRestart        Verdict = "restart"
	VerdictQuarantine     Verdict = "quarantine"
	VerdictConnect        Verdict = "connect"
	VerdictDisconnect     Verdict = "disconnect"
	VerdictRetryExhausted Verdict = "retry_exhausted"
	VerdictClean          Verdict = "clean"
	VerdictViolation      Verdict = "violation"
	VerdictInjected       Verdict = "injected"

	// Market lifecycle verdicts: install/upgrade/approve/revoke record a
	// completed lifecycle transition; reject records a package or verdict
	// refusal; rollback (shared with tx events) records a probation
	// failure reverting to the previous release's permissions.
	VerdictInstall Verdict = "install"
	VerdictUpgrade Verdict = "upgrade"
	VerdictApprove Verdict = "approve"
	VerdictRevoke  Verdict = "revoke"
	VerdictReject  Verdict = "reject"

	// VerdictBreach records a soft resource-quota breach (resource
	// events): the app exceeded a budget its manifest declared.
	VerdictBreach Verdict = "quota_breach"

	// Job lifecycle verdicts: a job was admitted, acked, rescheduled
	// after a failed attempt, or dead-lettered.
	VerdictEnqueue Verdict = "enqueue"
	VerdictDone    Verdict = "done"
	VerdictRetry   Verdict = "retry"
	VerdictDead    Verdict = "dead"

	// VerdictPull records a release admitted from an upstream registry
	// after local re-verification (federation events; rejections use
	// VerdictReject). VerdictPersistFailed records a release that was
	// admitted to the registry but could not be written to the local
	// store — restart durability degraded, admission unaffected.
	VerdictPull          Verdict = "pull"
	VerdictPersistFailed Verdict = "persist_failed"

	// SLO verdicts: an objective's error budget entered fast burn, or
	// recovered from it.
	VerdictSLOBreach  Verdict = "slo_breach"
	VerdictSLORecover Verdict = "slo_recover"
)

// Event is one structured audit record. Seq and Time are stamped by the
// journal at emit time; everything else is supplied by the emitting
// layer. Corr links every event caused by one mediated API call: the
// isolation layer mints it at the call boundary and threads it through
// the permission check down to the wire send, so a flow-mod, its
// permission decision and the originating call share one value.
type Event struct {
	Seq     uint64    `json:"seq"`
	Time    time.Time `json:"time"`
	Kind    Kind      `json:"kind"`
	Verdict Verdict   `json:"verdict,omitempty"`
	// App is the app the event is attributed to ("" for events with no
	// app principal, e.g. switch session transitions).
	App string `json:"app,omitempty"`
	// Corr is the correlation ID of the mediated call that caused the
	// event (0 when the event has no call provenance).
	Corr uint64 `json:"corr,omitempty"`
	// Token is the permission token of permission events.
	Token string `json:"token,omitempty"`
	// Op names the operation (mediated op or flow-mod command).
	Op string `json:"op,omitempty"`
	// DPID is the switch the event touches (0 when none).
	DPID uint64 `json:"dpid,omitempty"`
	// Detail carries the human-oriented specifics: deny reasons,
	// quarantine causes, fault kinds. Allow-path events leave it empty so
	// the hot path never formats strings.
	Detail string `json:"detail,omitempty"`
	// Tenant is the tenant the event is attributed to in multi-tenant
	// deployments. The journal stamps it at emit time when the emitting
	// layer left it empty: first from the App's "tenant/app" namespace
	// prefix, then from the process-wide default tenant.
	Tenant string `json:"tenant,omitempty"`
}

// defaultTenant is the tenant stamped on otherwise-unattributed events,
// for single-tenant processes running under a tenant identity (the CLIs'
// -tenant flag).
var defaultTenant atomic.Value // string

// SetDefaultTenant sets the process-wide tenant stamped on events that
// carry no tenant of their own and whose App has no tenant prefix.
func SetDefaultTenant(t string) { defaultTenant.Store(t) }

// DefaultTenant returns the process-wide default tenant ("" when unset).
func DefaultTenant() string {
	if v, ok := defaultTenant.Load().(string); ok {
		return v
	}
	return ""
}

// corrSeq mints correlation IDs. Process-wide so IDs stay unique across
// shields and kernels running side by side (benchmarks do exactly that).
var corrSeq atomic.Uint64

// NextCorr returns a fresh, nonzero correlation ID. It is a single
// atomic add — cheap enough to mint on every mediated call whether or
// not the journal is enabled.
func NextCorr() uint64 { return corrSeq.Add(1) }

// def is the process-wide journal every instrumented layer emits into,
// started before any init() in importing packages can emit.
var def = func() *Journal {
	j := NewJournal(JournalConfig{})
	j.Start()
	defaultDetector.register(j)
	return j
}()

// Default returns the process-wide journal.
func Default() *Journal { return def }

// Emit appends an event to the process-wide journal (see Journal.Emit).
func Emit(ev Event) { def.Emit(ev) }

// On reports whether the process-wide journal is accepting events.
// Emitting layers use it to skip building Event values entirely (the
// string conversions cost more than the gate).
func On() bool { return def.Enabled() }

// SetEnabled flips the process-wide journal's emit gate and returns the
// previous state. Disabling stops new events; the retained history stays
// queryable.
func SetEnabled(v bool) bool { return def.SetEnabled(v) }
