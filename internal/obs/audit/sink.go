package audit

import (
	"encoding/json"
	"os"
	"sync"
)

// defaultSinkMaxBytes bounds a sink file before rotation when the caller
// passes 0.
const defaultSinkMaxBytes = 64 << 20

// FileSink appends drained events to a JSONL file with size-bounded
// rotation: when an append would push the file past its limit, the file
// is renamed to <path>.1 (replacing any previous rotation) and a fresh
// file is started, so on-disk usage never exceeds ~2× the limit.
type FileSink struct {
	mu       sync.Mutex
	path     string
	maxBytes int64
	f        *os.File
	size     int64
	rotated  uint64
}

// NewFileSink opens (or creates, appending) a JSONL sink at path.
// maxBytes ≤ 0 selects a 64 MiB default.
func NewFileSink(path string, maxBytes int64) (*FileSink, error) {
	if maxBytes <= 0 {
		maxBytes = defaultSinkMaxBytes
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &FileSink{path: path, maxBytes: maxBytes, f: f, size: st.Size()}, nil
}

// Write appends one event as a JSON line, rotating first if the line
// would push the file past the size bound.
func (s *FileSink) Write(ev Event) error {
	line, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return os.ErrClosed
	}
	if s.size > 0 && s.size+int64(len(line)) > s.maxBytes {
		if err := s.rotateLocked(); err != nil {
			return err
		}
	}
	n, err := s.f.Write(line)
	s.size += int64(n)
	return err
}

func (s *FileSink) rotateLocked() error {
	if err := s.f.Close(); err != nil {
		return err
	}
	s.f = nil
	if err := os.Rename(s.path, s.path+".1"); err != nil && !os.IsNotExist(err) {
		return err
	}
	f, err := os.OpenFile(s.path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	s.f = f
	s.size = 0
	s.rotated++
	return nil
}

// Rotations reports how many times the sink has rotated.
func (s *FileSink) Rotations() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rotated
}

// Close flushes and closes the underlying file. Writes after Close fail.
func (s *FileSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}
