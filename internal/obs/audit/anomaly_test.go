package audit

import (
	"testing"
	"time"
)

func deny(app string, at time.Time) Event {
	return Event{Kind: KindPermission, Verdict: VerdictDeny, App: app, Time: at}
}

func TestDetectorFlagsBurstWithinOneWindow(t *testing.T) {
	d := NewDetector(DetectorConfig{})
	t0 := time.Unix(1000, 0)
	for i := 0; i < 128; i++ {
		d.Observe(deny("noisy", t0.Add(time.Duration(i)*time.Millisecond)))
	}
	snap := d.SnapshotAt("noisy", t0.Add(200*time.Millisecond))
	if !snap.Flagged {
		t.Fatalf("burst of 128 denies in one window should flag: %+v", snap)
	}
	if snap.TotalDenies != 128 {
		t.Fatalf("total denies %d, want 128", snap.TotalDenies)
	}
}

func TestDetectorSustainedRateFlagsViaEWMA(t *testing.T) {
	d := NewDetector(DetectorConfig{})
	t0 := time.Unix(1000, 0)
	// 100 denies per 1s window — below the 128 burst threshold — for 5
	// windows pushes the EWMA (alpha 0.3) past the threshold of 50.
	at := t0
	for w := 0; w < 5; w++ {
		for i := 0; i < 100; i++ {
			d.Observe(deny("steady", at))
		}
		at = at.Add(time.Second)
	}
	if snap := d.SnapshotAt("steady", at); !snap.Flagged {
		t.Fatalf("sustained 100/s should flag via EWMA: %+v", snap)
	}
}

func TestDetectorDecayClearsFlag(t *testing.T) {
	d := NewDetector(DetectorConfig{})
	t0 := time.Unix(1000, 0)
	for i := 0; i < 200; i++ {
		d.Observe(deny("bursty", t0))
	}
	if snap := d.SnapshotAt("bursty", t0.Add(100*time.Millisecond)); !snap.Flagged {
		t.Fatal("burst should flag")
	}
	// Idle decay: each elapsed window folds a zero into the EWMA; well
	// within the 64-window reset horizon the flag must clear.
	if snap := d.SnapshotAt("bursty", t0.Add(20*time.Second)); snap.Flagged {
		t.Fatalf("flag should decay after 20 idle windows: %+v", snap)
	}
}

func TestDetectorIsolatesApps(t *testing.T) {
	d := NewDetector(DetectorConfig{})
	// Real wall clock: Flagged() advances every app to time.Now().
	t0 := time.Now()
	for i := 0; i < 300; i++ {
		d.Observe(deny("noisy", t0))
	}
	d.Observe(deny("quiet", t0))
	if snap := d.SnapshotAt("quiet", t0.Add(time.Millisecond)); snap.Flagged {
		t.Fatalf("quiet app flagged by noisy neighbour: %+v", snap)
	}
	if snap := d.SnapshotAt("noisy", t0.Add(time.Millisecond)); !snap.Flagged {
		t.Fatal("noisy app should be flagged")
	}
	flagged := d.Flagged()
	if len(flagged) != 1 || flagged[0] != "noisy" {
		t.Fatalf("Flagged() = %v, want [noisy]", flagged)
	}
}

func TestDetectorIgnoresNonDenyEvents(t *testing.T) {
	d := NewDetector(DetectorConfig{})
	t0 := time.Unix(1000, 0)
	for i := 0; i < 500; i++ {
		d.Observe(Event{Kind: KindPermission, Verdict: VerdictAllow, App: "a", Time: t0})
		d.Observe(Event{Kind: KindFlowMod, Verdict: VerdictSent, App: "a", Time: t0})
	}
	if snap := d.SnapshotAt("a", t0); snap.Flagged || snap.TotalDenies != 0 {
		t.Fatalf("non-deny events advanced state: %+v", snap)
	}
}

func TestDetectorLongGapResets(t *testing.T) {
	d := NewDetector(DetectorConfig{})
	t0 := time.Unix(1000, 0)
	for i := 0; i < 200; i++ {
		d.Observe(deny("a", t0))
	}
	// A deny arriving hours later lands in fresh state (>64 windows).
	d.Observe(deny("a", t0.Add(2*time.Hour)))
	snap := d.SnapshotAt("a", t0.Add(2*time.Hour))
	if snap.Flagged || snap.EWMA != 0 || snap.WindowDenies != 1 {
		t.Fatalf("long gap should reset rate state: %+v", snap)
	}
}

func TestDetectorOnFlagFiresOncePerTransition(t *testing.T) {
	d := NewDetector(DetectorConfig{})
	var fired []AnomalySnapshot
	d.SetOnFlag(func(app string, snap AnomalySnapshot) {
		if app != "noisy" {
			t.Errorf("flagged app %q", app)
		}
		fired = append(fired, snap)
	})
	t0 := time.Unix(1000, 0)
	// Burst past the threshold, then keep denying: one transition, one
	// callback.
	for i := 0; i < 200; i++ {
		d.Observe(deny("noisy", t0.Add(time.Duration(i)*time.Millisecond)))
	}
	if len(fired) != 1 {
		t.Fatalf("onFlag fired %d times, want 1", len(fired))
	}
	if !fired[0].Flagged || fired[0].TotalDenies != 128 {
		t.Fatalf("flag snapshot = %+v", fired[0])
	}
	// Decay until the flag clears, then trip it again: second callback.
	d.SnapshotAt("noisy", t0.Add(30*time.Second))
	for i := 0; i < 200; i++ {
		d.Observe(deny("noisy", t0.Add(31*time.Second).Add(time.Duration(i)*time.Millisecond)))
	}
	if len(fired) != 2 {
		t.Fatalf("onFlag fired %d times after re-trip, want 2", len(fired))
	}
}
