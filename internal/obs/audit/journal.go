package audit

import (
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"sdnshield/internal/obs"
)

// Journal drop/emit accounting in the process-wide telemetry registry,
// alongside each journal's own exact counters.
var (
	mEmitted = obs.Default().Counter("sdnshield_audit_events_total",
		"Audit events accepted into the journal.")
	mDropped = obs.Default().Counter("sdnshield_audit_dropped_events_total",
		"Audit events dropped because a journal shard was full (backpressure).")
)

// JournalConfig tunes a Journal. Zero values select defaults.
type JournalConfig struct {
	// Shards is the number of producer-side buffers (rounded up to a
	// power of two). Default: GOMAXPROCS rounded up, capped at 8.
	Shards int
	// ShardBuffer is each shard's capacity in events; a full shard drops
	// (and counts) instead of blocking the producer. Default 1024.
	ShardBuffer int
	// History is the drained, queryable ring's capacity. Default 8192.
	History int
}

func (c *JournalConfig) fill() {
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	p := 1
	for p < c.Shards {
		p <<= 1
	}
	if p > 8 {
		p = 8
	}
	c.Shards = p
	if c.ShardBuffer <= 0 {
		c.ShardBuffer = 1024
	}
	if c.History <= 0 {
		c.History = 8192
	}
}

// jshard is one producer-side buffer. The trailing pad keeps adjacent
// shards' mutexes out of each other's cache lines.
type jshard struct {
	mu  sync.Mutex
	buf []Event
	n   int
	_   [40]byte
}

// Journal is a bounded MPSC event pipeline: many producers Emit into
// striped buffers without ever blocking; one drain goroutine merges them
// in sequence order into a queryable history ring and feeds consumers.
type Journal struct {
	cfg     JournalConfig
	enabled atomic.Bool
	seq     atomic.Uint64
	mask    uint64
	shards  []jshard

	emitted atomic.Uint64
	drops   atomic.Uint64

	notify  chan struct{}
	flushCh chan chan struct{}
	stopCh  chan struct{}
	doneCh  chan struct{}
	started atomic.Bool
	stopped atomic.Bool

	// drainMu serializes drain sweeps between the drain goroutine and
	// DrainNow/Flush on a stopped or never-started journal.
	drainMu sync.Mutex
	scratch []Event

	hmu     sync.Mutex
	history []Event // ring
	hNext   int
	hLen    int
	wake    chan struct{} // closed and replaced on every publish

	cmu       sync.Mutex
	consumers []func(Event)

	sink atomic.Pointer[FileSink]
	// sinkErrs counts sink writes that failed (rotation or I/O errors);
	// the pipeline keeps going.
	sinkErrs atomic.Uint64
}

// NewJournal builds a journal. It accepts events immediately but drains
// nothing until Start (tests use an unstarted journal plus DrainNow for
// deterministic sweeps).
func NewJournal(cfg JournalConfig) *Journal {
	cfg.fill()
	j := &Journal{
		cfg:     cfg,
		mask:    uint64(cfg.Shards - 1),
		shards:  make([]jshard, cfg.Shards),
		notify:  make(chan struct{}, 1),
		flushCh: make(chan chan struct{}),
		stopCh:  make(chan struct{}),
		doneCh:  make(chan struct{}),
		history: make([]Event, cfg.History),
		wake:    make(chan struct{}),
	}
	for i := range j.shards {
		j.shards[i].buf = make([]Event, 0, cfg.ShardBuffer)
	}
	j.enabled.Store(true)
	return j
}

// Start launches the drain goroutine. Idempotent.
func (j *Journal) Start() {
	if j.started.Swap(true) {
		return
	}
	go j.loop()
}

// Stop drains once more and terminates the drain goroutine. Emit after
// Stop still lands in the shards; DrainNow can sweep it.
func (j *Journal) Stop() {
	if !j.started.Load() || j.stopped.Swap(true) {
		return
	}
	close(j.stopCh)
	<-j.doneCh
}

// Enabled reports whether Emit is accepting events.
func (j *Journal) Enabled() bool { return j.enabled.Load() }

// SetEnabled flips the emit gate and returns the previous state.
func (j *Journal) SetEnabled(v bool) bool { return j.enabled.Swap(v) }

// Emitted reports how many events were accepted into the journal.
func (j *Journal) Emitted() uint64 { return j.emitted.Load() }

// Drops reports how many events were dropped on full shards.
func (j *Journal) Drops() uint64 { return j.drops.Load() }

// SinkErrors reports failed file-sink writes.
func (j *Journal) SinkErrors() uint64 { return j.sinkErrs.Load() }

// LastSeq returns the sequence number of the most recently emitted event
// (drained or not). Stream clients use it as their initial cursor.
func (j *Journal) LastSeq() uint64 { return j.seq.Load() }

// shard picks the caller's stripe off a stack-address hash, the same
// trick obs uses: no goroutine ID exists, but distinct goroutines live
// on distinct stacks.
func (j *Journal) shard() *jshard {
	var b byte
	h := uint64(uintptr(unsafe.Pointer(&b)))
	h ^= h >> 12
	h *= 0x9e3779b97f4a7c15
	return &j.shards[(h>>56)&j.mask]
}

// Emit appends an event. It never blocks: a full shard increments the
// drop counter and the event is lost (bounded memory beats a stalled
// mediated call). Seq and, if unset, Time are stamped here.
func (j *Journal) Emit(ev Event) {
	if !j.enabled.Load() {
		return
	}
	if ev.Time.IsZero() {
		ev.Time = time.Now()
	}
	if ev.Tenant == "" {
		// Multi-tenant managers namespace app names "tenant/app" (market
		// app names themselves cannot contain '/'), so the prefix is an
		// unambiguous attribution; otherwise fall back to the process-wide
		// tenant identity.
		if i := strings.IndexByte(ev.App, '/'); i > 0 {
			ev.Tenant = ev.App[:i]
		} else {
			ev.Tenant = DefaultTenant()
		}
	}
	ev.Seq = j.seq.Add(1)
	sh := j.shard()
	sh.mu.Lock()
	if sh.n == cap(sh.buf) {
		sh.mu.Unlock()
		j.drops.Add(1)
		mDropped.Inc()
		return
	}
	sh.buf = sh.buf[:sh.n+1]
	sh.buf[sh.n] = ev
	sh.n++
	sh.mu.Unlock()
	j.emitted.Add(1)
	mEmitted.Inc()
	select {
	case j.notify <- struct{}{}:
	default:
	}
}

// AddConsumer registers a callback invoked for every drained event, in
// sequence order, on the drain goroutine. Consumers must be fast; slow
// ones delay the whole pipeline (but never the emitters).
func (j *Journal) AddConsumer(fn func(Event)) {
	j.cmu.Lock()
	j.consumers = append(j.consumers, fn)
	j.cmu.Unlock()
}

// AttachSink routes every drained event into a JSONL file sink.
func (j *Journal) AttachSink(s *FileSink) { j.sink.Store(s) }

// DetachSink stops writing to the attached sink (without closing it).
func (j *Journal) DetachSink() { j.sink.Store(nil) }

// Flush blocks until every event emitted before the call has been
// drained: published to the history, delivered to consumers and written
// to the sink. On a stopped or never-started journal it sweeps inline.
func (j *Journal) Flush() {
	if j.started.Load() && !j.stopped.Load() {
		ack := make(chan struct{})
		select {
		case j.flushCh <- ack:
			select {
			case <-ack:
			case <-j.doneCh:
			}
			return
		case <-j.doneCh:
		}
	}
	j.drainOnce()
}

// DrainNow sweeps the shards inline — the deterministic alternative to
// the drain goroutine for journals that were never started.
func (j *Journal) DrainNow() { j.drainOnce() }

func (j *Journal) loop() {
	defer close(j.doneCh)
	for {
		select {
		case <-j.stopCh:
			j.drainOnce()
			return
		case <-j.notify:
			j.drainOnce()
		case ack := <-j.flushCh:
			j.drainOnce()
			close(ack)
		}
	}
}

// drainOnce sweeps every shard, restores global order by sequence
// number, runs consumers and the sink, then publishes to the history
// ring and wakes long-poll waiters.
func (j *Journal) drainOnce() {
	j.drainMu.Lock()
	defer j.drainMu.Unlock()
	batch := j.scratch[:0]
	for i := range j.shards {
		sh := &j.shards[i]
		sh.mu.Lock()
		batch = append(batch, sh.buf[:sh.n]...)
		sh.buf = sh.buf[:0]
		sh.n = 0
		sh.mu.Unlock()
	}
	j.scratch = batch[:0]
	if len(batch) == 0 {
		return
	}
	// Shards are filled concurrently, so restore the global emit order.
	for i := 1; i < len(batch); i++ {
		for k := i; k > 0 && batch[k].Seq < batch[k-1].Seq; k-- {
			batch[k], batch[k-1] = batch[k-1], batch[k]
		}
	}
	j.cmu.Lock()
	consumers := append([]func(Event){}, j.consumers...)
	j.cmu.Unlock()
	sink := j.sink.Load()
	for _, ev := range batch {
		for _, fn := range consumers {
			fn(ev)
		}
		if sink != nil {
			if err := sink.Write(ev); err != nil {
				j.sinkErrs.Add(1)
			}
		}
	}
	j.hmu.Lock()
	for _, ev := range batch {
		j.history[j.hNext] = ev
		j.hNext = (j.hNext + 1) % len(j.history)
		if j.hLen < len(j.history) {
			j.hLen++
		}
	}
	close(j.wake)
	j.wake = make(chan struct{})
	j.hmu.Unlock()
}

// Filter selects events out of the journal history. Zero-valued fields
// match everything.
type Filter struct {
	App     string
	Kind    Kind
	Verdict Verdict
	Corr    uint64
	Tenant  string
	// AfterSeq keeps only events with Seq strictly greater (stream
	// cursors).
	AfterSeq uint64
	// Limit keeps only the most recent N matches; 0 means all retained.
	Limit int
}

func (f *Filter) match(ev *Event) bool {
	if ev.Seq <= f.AfterSeq {
		return false
	}
	if f.App != "" && ev.App != f.App {
		return false
	}
	if f.Kind != "" && ev.Kind != f.Kind {
		return false
	}
	if f.Verdict != "" && ev.Verdict != f.Verdict {
		return false
	}
	if f.Corr != 0 && ev.Corr != f.Corr {
		return false
	}
	if f.Tenant != "" && ev.Tenant != f.Tenant {
		return false
	}
	return true
}

// Query returns the retained events matching the filter, oldest first.
func (j *Journal) Query(f Filter) []Event {
	j.hmu.Lock()
	defer j.hmu.Unlock()
	return j.queryLocked(f)
}

func (j *Journal) queryLocked(f Filter) []Event {
	var out []Event
	start := j.hNext - j.hLen
	if start < 0 {
		start += len(j.history)
	}
	for i := 0; i < j.hLen; i++ {
		ev := &j.history[(start+i)%len(j.history)]
		if f.match(ev) {
			out = append(out, *ev)
		}
	}
	if f.Limit > 0 && len(out) > f.Limit {
		out = out[len(out)-f.Limit:]
	}
	return out
}

// WaitQuery is Query with long-poll semantics: when nothing matches it
// blocks until a drain publishes new events or the timeout elapses,
// returning nil on timeout.
func (j *Journal) WaitQuery(f Filter, timeout time.Duration) []Event {
	deadline := time.Now().Add(timeout)
	for {
		j.hmu.Lock()
		out := j.queryLocked(f)
		wake := j.wake
		j.hmu.Unlock()
		if len(out) > 0 {
			return out
		}
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return nil
		}
		timer := time.NewTimer(remaining)
		select {
		case <-wake:
			timer.Stop()
		case <-timer.C:
			return nil
		}
	}
}
