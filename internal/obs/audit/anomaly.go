package audit

import (
	"sync"
	"time"
)

// DetectorConfig tunes the denial-rate anomaly detector. Zero values
// select defaults.
type DetectorConfig struct {
	// Window is the sliding-window width denials are bucketed into.
	// Default 1s.
	Window time.Duration
	// Alpha is the EWMA smoothing factor applied when a window closes.
	// Default 0.3.
	Alpha float64
	// EWMAThreshold flags an app when its smoothed denials-per-window
	// rate reaches it. Default 50.
	EWMAThreshold float64
	// BurstThreshold flags an app immediately when a single window's raw
	// denial count reaches it, before the EWMA catches up. Default 128.
	BurstThreshold int
	// ClearFactor unflags an app once its EWMA decays below
	// EWMAThreshold*ClearFactor (hysteresis). Default 0.5.
	ClearFactor float64
}

func (c *DetectorConfig) fill() {
	if c.Window <= 0 {
		c.Window = time.Second
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.3
	}
	if c.EWMAThreshold <= 0 {
		c.EWMAThreshold = 50
	}
	if c.BurstThreshold <= 0 {
		c.BurstThreshold = 128
	}
	if c.ClearFactor <= 0 || c.ClearFactor >= 1 {
		c.ClearFactor = 0.5
	}
}

// appRate is one app's denial-rate state.
type appRate struct {
	windowStart time.Time
	window      int // denials in the current (open) window
	ewma        float64
	flagged     bool
	total       uint64
	lastDeny    time.Time
}

// Detector watches permission-deny events and flags apps whose denial
// rate is anomalous: either a raw burst inside one window or a sustained
// elevated EWMA of denials-per-window. Event timestamps (not wall-clock
// reads) drive window advancement, so replayed or test-generated
// histories evaluate deterministically.
type Detector struct {
	cfg    DetectorConfig
	mu     sync.Mutex
	apps   map[string]*appRate
	onFlag func(app string, snap AnomalySnapshot)
}

// NewDetector builds a detector; register it with a journal via
// j.AddConsumer(d.Observe).
func NewDetector(cfg DetectorConfig) *Detector {
	cfg.fill()
	return &Detector{cfg: cfg, apps: make(map[string]*appRate)}
}

// defaultDetector feeds HealthSnapshot/health annotations for the
// process-wide journal.
var defaultDetector = NewDetector(DetectorConfig{})

// DefaultDetector returns the detector attached to the default journal.
func DefaultDetector() *Detector { return defaultDetector }

func (d *Detector) register(j *Journal) { j.AddConsumer(d.Observe) }

// SetOnFlag installs a callback fired each time an app's flagged state
// transitions from clear to flagged, with the snapshot that tripped it.
// The callback runs on the journal drain goroutine, outside the
// detector lock — it may call back into the detector, but must not
// block (the flight recorder uses it to trigger diagnostic bundles).
// Passing nil removes the callback.
func (d *Detector) SetOnFlag(fn func(app string, snap AnomalySnapshot)) {
	d.mu.Lock()
	d.onFlag = fn
	d.mu.Unlock()
}

// Observe consumes one journal event. Only permission denials with an
// app principal advance any state.
func (d *Detector) Observe(ev Event) {
	if ev.Kind != KindPermission || ev.Verdict != VerdictDeny || ev.App == "" {
		return
	}
	var (
		fire func(string, AnomalySnapshot)
		snap AnomalySnapshot
	)
	d.mu.Lock()
	st := d.apps[ev.App]
	if st == nil {
		st = &appRate{windowStart: ev.Time}
		d.apps[ev.App] = st
	}
	d.advanceLocked(st, ev.Time)
	st.window++
	st.total++
	st.lastDeny = ev.Time
	if st.window >= d.cfg.BurstThreshold || st.ewma >= d.cfg.EWMAThreshold {
		if !st.flagged {
			st.flagged = true
			if d.onFlag != nil {
				fire, snap = d.onFlag, snapshotOf(ev.App, st)
			}
		}
	}
	d.mu.Unlock()
	if fire != nil {
		fire(ev.App, snap)
	}
}

// advanceLocked folds every fully-elapsed window since windowStart into
// the EWMA and applies the hysteresis clear check. A long idle gap
// (>64 windows) resets the EWMA outright instead of folding 64+ zeros.
func (d *Detector) advanceLocked(st *appRate, now time.Time) {
	if st.windowStart.IsZero() {
		st.windowStart = now
		return
	}
	elapsed := now.Sub(st.windowStart)
	if elapsed < d.cfg.Window {
		return
	}
	n := int(elapsed / d.cfg.Window)
	if n > 64 {
		st.ewma = 0
		st.window = 0
		st.windowStart = now
	} else {
		for i := 0; i < n; i++ {
			st.ewma = d.cfg.Alpha*float64(st.window) + (1-d.cfg.Alpha)*st.ewma
			st.window = 0
		}
		st.windowStart = st.windowStart.Add(time.Duration(n) * d.cfg.Window)
	}
	if st.flagged && st.ewma < d.cfg.EWMAThreshold*d.cfg.ClearFactor {
		st.flagged = false
	}
}

// AnomalySnapshot is one app's denial-rate view.
type AnomalySnapshot struct {
	App          string    `json:"app"`
	Flagged      bool      `json:"flagged"`
	EWMA         float64   `json:"ewma"`
	WindowDenies int       `json:"window_denies"`
	TotalDenies  uint64    `json:"total_denies"`
	LastDeny     time.Time `json:"last_deny,omitempty"`
}

// Lookup returns the app's current denial-rate state, advancing its
// windows to now first (so a flag decays even with no new denials).
// The zero snapshot is returned for unknown apps.
func (d *Detector) Lookup(app string) AnomalySnapshot {
	return d.SnapshotAt(app, time.Now())
}

// SnapshotAt is Lookup at an explicit instant (deterministic tests).
func (d *Detector) SnapshotAt(app string, now time.Time) AnomalySnapshot {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := d.apps[app]
	if st == nil {
		return AnomalySnapshot{App: app}
	}
	d.advanceLocked(st, now)
	return snapshotOf(app, st)
}

// snapshotOf renders one app's state (caller holds d.mu).
func snapshotOf(app string, st *appRate) AnomalySnapshot {
	return AnomalySnapshot{
		App:          app,
		Flagged:      st.flagged,
		EWMA:         st.ewma,
		WindowDenies: st.window,
		TotalDenies:  st.total,
		LastDeny:     st.lastDeny,
	}
}

// Flagged lists the apps currently flagged as anomalous, advancing each
// to now first.
func (d *Detector) Flagged() []string {
	now := time.Now()
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []string
	for app, st := range d.apps {
		d.advanceLocked(st, now)
		if st.flagged {
			out = append(out, app)
		}
	}
	return out
}

// Reset clears all per-app state (tests).
func (d *Detector) Reset() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.apps = make(map[string]*appRate)
}
