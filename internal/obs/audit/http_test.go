package audit

import (
	"bufio"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

type auditResponse struct {
	Source  string  `json:"source"`
	Emitted uint64  `json:"emitted"`
	Dropped uint64  `json:"dropped"`
	Events  []Event `json:"events"`
}

func getAudit(t *testing.T, srv *httptest.Server, query string) auditResponse {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + "/audit" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /audit%s: status %d", query, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("content type %q", ct)
	}
	var out auditResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestAuditEndpointFilters(t *testing.T) {
	j := NewJournal(JournalConfig{})
	j.Emit(Event{Kind: KindPermission, Verdict: VerdictDeny, App: "mal", Corr: 5, Token: "insert_flow"})
	j.Emit(Event{Kind: KindPermission, Verdict: VerdictAllow, App: "good", Corr: 6})
	j.Emit(Event{Kind: KindFlowMod, Verdict: VerdictSent, App: "good", Corr: 6, DPID: 1})
	j.DrainNow()
	srv := httptest.NewServer(Handler(j))
	defer srv.Close()

	if got := getAudit(t, srv, ""); len(got.Events) != 3 || got.Source != "journal" {
		t.Fatalf("unfiltered: %+v", got)
	}
	if got := getAudit(t, srv, "?app=mal"); len(got.Events) != 1 || got.Events[0].Token != "insert_flow" {
		t.Fatalf("app filter: %+v", got.Events)
	}
	if got := getAudit(t, srv, "?verdict=deny"); len(got.Events) != 1 {
		t.Fatalf("verdict filter: %+v", got.Events)
	}
	if got := getAudit(t, srv, "?corr=6"); len(got.Events) != 2 {
		t.Fatalf("corr filter: %+v", got.Events)
	}
	if got := getAudit(t, srv, "?kind=flow_mod"); len(got.Events) != 1 || got.Events[0].DPID != 1 {
		t.Fatalf("kind filter: %+v", got.Events)
	}
	if got := getAudit(t, srv, "?limit=1"); len(got.Events) != 1 || got.Events[0].Kind != KindFlowMod {
		t.Fatalf("limit should keep newest: %+v", got.Events)
	}
	// Bad params are 400s.
	for _, q := range []string{"?corr=zebra", "?limit=-1"} {
		resp, err := srv.Client().Get(srv.URL + "/audit" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 400 {
			t.Fatalf("GET /audit%s: status %d, want 400", q, resp.StatusCode)
		}
	}
}

func TestAuditEndpointFallback(t *testing.T) {
	j := NewJournal(JournalConfig{})
	unregister := RegisterFallback("test-activity-log", func(app string, deniesOnly bool) []Event {
		if app != "" && app != "mal" {
			return nil
		}
		return []Event{{Kind: KindPermission, Verdict: VerdictDeny, App: "mal", Detail: "from ring"}}
	})
	defer unregister()
	srv := httptest.NewServer(Handler(j))
	defer srv.Close()

	got := getAudit(t, srv, "?app=mal")
	if got.Source != "fallback" || len(got.Events) != 1 || got.Events[0].Detail != "from ring" {
		t.Fatalf("fallback response: %+v", got)
	}
	// Once the journal has matching events, it wins.
	j.Emit(Event{Kind: KindPermission, Verdict: VerdictDeny, App: "mal"})
	j.DrainNow()
	if got := getAudit(t, srv, "?app=mal"); got.Source != "journal" {
		t.Fatalf("journal should take precedence: %+v", got)
	}
}

func TestAuditStreamTailsNewEvents(t *testing.T) {
	j := NewJournal(JournalConfig{})
	j.Start()
	defer j.Stop()
	j.Emit(Event{Kind: KindPermission, Verdict: VerdictAllow, App: "old"})
	j.Flush()
	srv := httptest.NewServer(Handler(j))
	defer srv.Close()

	type streamResult struct {
		events []Event
		cursor string
		ct     string
	}
	res := make(chan streamResult, 1)
	go func() {
		resp, err := srv.Client().Get(srv.URL + "/audit/stream?wait=5")
		if err != nil {
			res <- streamResult{}
			return
		}
		defer resp.Body.Close()
		var events []Event
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			var ev Event
			if json.Unmarshal(sc.Bytes(), &ev) == nil {
				events = append(events, ev)
			}
		}
		res <- streamResult{events, resp.Header.Get("X-Audit-Cursor"), resp.Header.Get("Content-Type")}
	}()
	time.Sleep(50 * time.Millisecond)
	j.Emit(Event{Kind: KindFlowMod, Verdict: VerdictSent, App: "new", Corr: 11})
	j.Flush()
	select {
	case got := <-res:
		if got.ct != "application/x-ndjson" {
			t.Fatalf("content type %q", got.ct)
		}
		if len(got.events) != 1 || got.events[0].App != "new" {
			t.Fatalf("stream should tail only new events: %+v", got.events)
		}
		if got.cursor == "" || got.cursor == "0" {
			t.Fatalf("cursor header %q", got.cursor)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("stream never returned")
	}
}

func TestAuditStreamTimesOutEmpty(t *testing.T) {
	j := NewJournal(JournalConfig{})
	j.Start()
	defer j.Stop()
	srv := httptest.NewServer(Handler(j))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/audit/stream?wait=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var buf [64]byte
	if n, _ := resp.Body.Read(buf[:]); n != 0 {
		t.Fatalf("expected empty body, got %q", buf[:n])
	}
}

func TestAuditStreamResumesFromCursor(t *testing.T) {
	j := NewJournal(JournalConfig{})
	j.Emit(Event{Kind: KindTx, Verdict: VerdictCommit, App: "a"})
	j.Emit(Event{Kind: KindTx, Verdict: VerdictAbort, App: "a"})
	j.DrainNow()
	srv := httptest.NewServer(Handler(j))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/audit/stream?after=1&wait=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	var events []Event
	for sc.Scan() {
		var ev Event
		if json.Unmarshal(sc.Bytes(), &ev) == nil {
			events = append(events, ev)
		}
	}
	if len(events) != 1 || events[0].Verdict != VerdictAbort {
		t.Fatalf("cursor resume: %+v", events)
	}
}
