package audit

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"sdnshield/internal/obs"
)

// fallback providers supply events when the journal history has nothing
// for a query — e.g. a permengine ActivityLog converted on demand. Keyed
// by provider name so re-registration replaces.
var (
	fbMu        sync.Mutex
	fbProviders = make(map[string]func(app string, deniesOnly bool) []Event)
)

// RegisterFallback registers a named provider consulted by /audit when
// the journal query returns nothing (the journal may have been disabled
// or its history evicted). The returned function unregisters it.
func RegisterFallback(name string, fn func(app string, deniesOnly bool) []Event) (unregister func()) {
	fbMu.Lock()
	fbProviders[name] = fn
	fbMu.Unlock()
	return func() {
		fbMu.Lock()
		delete(fbProviders, name)
		fbMu.Unlock()
	}
}

func fallbackEvents(app string, deniesOnly bool) []Event {
	fbMu.Lock()
	fns := make([]func(string, bool) []Event, 0, len(fbProviders))
	for _, fn := range fbProviders {
		fns = append(fns, fn)
	}
	fbMu.Unlock()
	var out []Event
	for _, fn := range fns {
		out = append(out, fn(app, deniesOnly)...)
	}
	return out
}

// maxStreamWait caps /audit/stream long-poll duration.
const maxStreamWait = 30 * time.Second

// Handler serves the journal over HTTP:
//
//	/audit        — retained events as JSON, filterable by ?app=, ?kind=,
//	                ?verdict=, ?corr=, ?tenant=, ?limit=
//	/audit/stream — long-poll JSONL tail: blocks until events newer than
//	                ?after= (default: now) arrive or ?wait= (seconds,
//	                default 10, max 30) elapses; the X-Audit-Cursor
//	                response header carries the next cursor.
func Handler(j *Journal) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/audit", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/audit" {
			http.NotFound(w, r)
			return
		}
		f, err := filterFromQuery(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if f.Limit == 0 {
			f.Limit = 1000
		}
		events := j.Query(f)
		source := "journal"
		if len(events) == 0 {
			events = fallbackEvents(f.App, f.Verdict == VerdictDeny)
			if len(events) > 0 {
				source = "fallback"
			}
		}
		if events == nil {
			events = []Event{}
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		json.NewEncoder(w).Encode(struct {
			Source  string  `json:"source"`
			Emitted uint64  `json:"emitted"`
			Dropped uint64  `json:"dropped"`
			Events  []Event `json:"events"`
		}{source, j.Emitted(), j.Drops(), events})
	})
	mux.HandleFunc("/audit/stream", func(w http.ResponseWriter, r *http.Request) {
		f, err := filterFromQuery(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if after := r.URL.Query().Get("after"); after != "" {
			v, err := strconv.ParseUint(after, 10, 64)
			if err != nil {
				http.Error(w, "bad after cursor: "+err.Error(), http.StatusBadRequest)
				return
			}
			f.AfterSeq = v
		} else {
			// Default to "from now": tail new events only.
			f.AfterSeq = j.LastSeq()
		}
		wait := 10 * time.Second
		if ws := r.URL.Query().Get("wait"); ws != "" {
			secs, err := strconv.Atoi(ws)
			if err != nil || secs < 0 {
				http.Error(w, "bad wait seconds", http.StatusBadRequest)
				return
			}
			wait = time.Duration(secs) * time.Second
			if wait > maxStreamWait {
				wait = maxStreamWait
			}
		}
		events := j.WaitQuery(f, wait)
		cursor := f.AfterSeq
		if n := len(events); n > 0 {
			cursor = events[n-1].Seq
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Header().Set("X-Audit-Cursor", strconv.FormatUint(cursor, 10))
		enc := json.NewEncoder(w)
		for _, ev := range events {
			enc.Encode(ev)
		}
	})
	return mux
}

func filterFromQuery(r *http.Request) (Filter, error) {
	q := r.URL.Query()
	f := Filter{
		App:     q.Get("app"),
		Kind:    Kind(q.Get("kind")),
		Verdict: Verdict(q.Get("verdict")),
		Tenant:  q.Get("tenant"),
	}
	if c := q.Get("corr"); c != "" {
		v, err := strconv.ParseUint(c, 10, 64)
		if err != nil {
			return f, fmt.Errorf("bad corr: %v", err)
		}
		f.Corr = v
	}
	if l := q.Get("limit"); l != "" {
		v, err := strconv.Atoi(l)
		if err != nil || v < 0 {
			return f, fmt.Errorf("bad limit")
		}
		f.Limit = v
	}
	return f, nil
}

// Mount the default journal's endpoints on every obs handler.
func init() {
	h := Handler(def)
	obs.RegisterHandler("/audit", h)
	obs.RegisterHandler("/audit/stream", h)
}
