package obs

import "sync"

// LabelOverflow is the label value a LabelGuard folds overflow into: once
// a guard has admitted its configured number of distinct values, every
// further value maps to this one, so a flood of unique tenant IDs (or any
// other unbounded principal) collapses into a single metrics series
// instead of growing the registry without bound.
const LabelOverflow = "_other"

// LabelGuard caps the distinct values one metric label may take. Metrics
// series live for the process lifetime (the registry never evicts), so an
// attacker who can mint principals — tenant IDs above all — could
// otherwise OOM the registry by making every request a new series. The
// guard admits the first max distinct values verbatim and folds the rest
// into LabelOverflow; admission is first-come, permanent, and
// goroutine-safe.
type LabelGuard struct {
	mu     sync.Mutex
	max    int
	seen   map[string]struct{}
	folded uint64
}

// NewLabelGuard builds a guard admitting up to max distinct label values
// (default 256 for max <= 0).
func NewLabelGuard(max int) *LabelGuard {
	if max <= 0 {
		max = 256
	}
	return &LabelGuard{max: max, seen: make(map[string]struct{}, 16)}
}

// Value returns v when it is already admitted or room remains, and
// LabelOverflow once the guard is full. A value admitted once stays
// admitted — the same principal always lands in the same series.
func (g *LabelGuard) Value(v string) string {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.seen[v]; ok {
		return v
	}
	if len(g.seen) < g.max {
		g.seen[v] = struct{}{}
		return v
	}
	g.folded++
	return LabelOverflow
}

// Admitted reports how many distinct values the guard has let through.
func (g *LabelGuard) Admitted() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.seen)
}

// Folded reports how many lookups were folded into LabelOverflow.
func (g *LabelGuard) Folded() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.folded
}
