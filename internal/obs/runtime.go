package obs

import (
	"runtime/metrics"
	"sync"
	"time"
)

// Process-level Go runtime gauges. /metrics should answer "is the
// controller process itself healthy" — heap size, GC pressure,
// goroutine population, scheduler latency — not just the app-layer
// series, so a scrape during an incident separates "an app is abusing
// the KSD" from "the runtime is drowning".
//
// runtime/metrics reads are cheap but not free, and one scrape hits
// several gauges, so a shared sampler reads the whole sample set at
// most once per runtimeRefresh and the gauges serve derived values
// from that read.

// runtimeRefresh bounds how often the runtime/metrics samples are
// re-read; scrapes inside the window share one read.
const runtimeRefresh = time.Second

// Metric names read from the runtime. Unknown names degrade to
// KindBad samples, which derive() skips — a missing metric on an
// older runtime yields an absent gauge, never a panic.
const (
	rmGoroutines = "/sched/goroutines:goroutines"
	rmHeapBytes  = "/memory/classes/heap/objects:bytes"
	rmAllocBytes = "/gc/heap/allocs:bytes"
	rmGCCycles   = "/gc/cycles/total:gc-cycles"
	rmGCPauses   = "/sched/pauses/total/gc:seconds"
	rmSchedLat   = "/sched/latencies:seconds"
)

type runtimeSampler struct {
	mu      sync.Mutex
	last    time.Time
	samples []metrics.Sample
	vals    map[string]float64
}

func newRuntimeSampler() *runtimeSampler {
	names := []string{rmGoroutines, rmHeapBytes, rmAllocBytes, rmGCCycles, rmGCPauses, rmSchedLat}
	rs := &runtimeSampler{
		samples: make([]metrics.Sample, len(names)),
		vals:    make(map[string]float64),
	}
	for i, n := range names {
		rs.samples[i].Name = n
	}
	return rs
}

// value returns one derived gauge, refreshing the shared sample set
// when it is stale.
func (rs *runtimeSampler) value(key string) float64 {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if now := time.Now(); now.Sub(rs.last) >= runtimeRefresh {
		rs.last = now
		metrics.Read(rs.samples)
		rs.derive()
	}
	return rs.vals[key]
}

// derive folds the raw samples into the exported gauge values.
func (rs *runtimeSampler) derive() {
	for i := range rs.samples {
		s := &rs.samples[i]
		switch s.Value.Kind() {
		case metrics.KindUint64:
			rs.vals[s.Name] = float64(s.Value.Uint64())
		case metrics.KindFloat64:
			rs.vals[s.Name] = s.Value.Float64()
		case metrics.KindFloat64Histogram:
			h := s.Value.Float64Histogram()
			switch s.Name {
			case rmGCPauses:
				rs.vals[s.Name] = histApproxSum(h)
			case rmSchedLat:
				rs.vals[s.Name+"/p50"] = histQuantile(h, 0.50)
				rs.vals[s.Name+"/p99"] = histQuantile(h, 0.99)
			}
		}
	}
}

// histApproxSum estimates the sum of a runtime histogram's
// observations as Σ count × bucket midpoint (the runtime exposes
// bucketed pauses, not an exact total; midpoints bound the error by
// the bucket width).
func histApproxSum(h *metrics.Float64Histogram) float64 {
	var sum float64
	for i, n := range h.Counts {
		if n == 0 {
			continue
		}
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		mid := finiteMid(lo, hi)
		sum += float64(n) * mid
	}
	return sum
}

// histQuantile returns the q-quantile of a runtime histogram (bucket
// upper bound of the bucket containing the quantile), 0 for an empty
// histogram.
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, n := range h.Counts {
		total += n
	}
	if total == 0 {
		return 0
	}
	want := uint64(q * float64(total))
	var cum uint64
	for i, n := range h.Counts {
		cum += n
		if cum > want {
			return finiteMid(h.Buckets[i], h.Buckets[i+1])
		}
	}
	return finiteMid(h.Buckets[len(h.Buckets)-2], h.Buckets[len(h.Buckets)-1])
}

// finiteMid is the midpoint of a bucket with ±Inf edges clamped to the
// finite side.
func finiteMid(lo, hi float64) float64 {
	inf := func(f float64) bool { return f > 1e300 || f < -1e300 }
	switch {
	case inf(lo) && inf(hi):
		return 0
	case inf(lo):
		return hi
	case inf(hi):
		return lo
	default:
		return (lo + hi) / 2
	}
}

// RegisterRuntimeMetrics installs the Go runtime gauges into a
// registry. The default registry gets them at package init, so every
// /metrics scrape includes process health with zero wiring; custom
// registries opt in explicitly.
func RegisterRuntimeMetrics(reg *Registry) {
	rs := newRuntimeSampler()
	g := func(name, help, key string, labels ...string) {
		reg.GaugeFunc(name, help, func() float64 { return rs.value(key) }, labels...)
	}
	g("sdnshield_runtime_goroutines", "Live goroutines (runtime/metrics).", rmGoroutines)
	g("sdnshield_runtime_heap_bytes", "Bytes of live heap objects.", rmHeapBytes)
	g("sdnshield_runtime_alloc_bytes_total", "Cumulative bytes allocated on the heap.", rmAllocBytes)
	g("sdnshield_runtime_gc_cycles_total", "Completed GC cycles.", rmGCCycles)
	g("sdnshield_runtime_gc_pause_seconds_total", "Approximate cumulative stop-the-world GC pause time.", rmGCPauses)
	g("sdnshield_runtime_sched_latency_seconds", "Goroutine scheduling latency (median).", rmSchedLat+"/p50", "quantile", "0.5")
	g("sdnshield_runtime_sched_latency_seconds", "Goroutine scheduling latency (median).", rmSchedLat+"/p99", "quantile", "0.99")
}

func init() { RegisterRuntimeMetrics(def) }
