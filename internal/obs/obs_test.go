package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterMergesShards(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "help")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("counter value = %d, want 8000", got)
	}
}

func TestCounterIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "h", "app", "fw", "op", "insert")
	b := r.Counter("x_total", "h", "op", "insert", "app", "fw") // label order must not matter
	if a != b {
		t.Fatal("same (name, labels) returned distinct counters")
	}
	c := r.Counter("x_total", "h", "app", "other", "op", "insert")
	if a == c {
		t.Fatal("different labels returned the same counter")
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth", "h")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "h")
	h.Observe(500 * time.Nanosecond) // below first bound -> bucket 0
	h.Observe(time.Microsecond)      // == first bound -> bucket 0
	h.Observe(3 * time.Microsecond)  // bucket le=4µs
	h.Observe(time.Hour)             // +Inf bucket
	snap := h.Snapshot()
	if snap.Count != 4 {
		t.Fatalf("count = %d, want 4", snap.Count)
	}
	if snap.Buckets[0].Count != 2 {
		t.Fatalf("bucket[0] cumulative = %d, want 2", snap.Buckets[0].Count)
	}
	// le=2µs holds the same two; le=4µs adds the 3µs observation.
	if snap.Buckets[1].Count != 2 || snap.Buckets[2].Count != 3 {
		t.Fatalf("buckets[1,2] = %d,%d, want 2,3", snap.Buckets[1].Count, snap.Buckets[2].Count)
	}
	last := snap.Buckets[len(snap.Buckets)-1]
	if last.Count != 4 {
		t.Fatalf("+Inf cumulative = %d, want 4", last.Count)
	}
	wantSum := (500*time.Nanosecond + time.Microsecond + 3*time.Microsecond + time.Hour).Seconds()
	if snap.Sum < wantSum*0.999 || snap.Sum > wantSum*1.001 {
		t.Fatalf("sum = %v, want ~%v", snap.Sum, wantSum)
	}
}

func TestHistogramExemplar(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "h")
	tracer := NewTracer(8, 1)
	tr := tracer.Start("op")
	if tr == nil {
		t.Fatal("1-in-1 sampling returned nil trace")
	}
	h.ObserveTraced(3*time.Microsecond, tr)
	tr.Finish()
	snap := h.Snapshot()
	ex := snap.Buckets[2].Exemplar // le=4µs bucket
	if ex == nil || ex.TraceID != tr.ID {
		t.Fatalf("exemplar = %+v, want trace %s", ex, tr.ID)
	}
}

func TestDisabledInstrumentsAreNoops(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "h")
	h := r.Histogram("h_seconds", "h")
	g := r.Gauge("g", "h")
	prev := SetEnabled(false)
	defer SetEnabled(prev)
	c.Inc()
	h.Observe(time.Millisecond)
	g.Set(9)
	tm := StartTimer()
	if tm.Active() {
		t.Fatal("timer active while disabled")
	}
	h.ObserveTimer(tm)
	if c.Value() != 0 || h.Count() != 0 || g.Value() != 0 {
		t.Fatalf("disabled instruments recorded: c=%d h=%d g=%d", c.Value(), h.Count(), g.Value())
	}
	if tr := NewTracer(8, 1).Start("op"); tr != nil {
		t.Fatal("tracer sampled while disabled")
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("sdnshield_checks_total", "Total checks.", "decision", "allow").Add(3)
	r.Counter("sdnshield_checks_total", "Total checks.", "decision", "deny").Add(1)
	r.Gauge("sdnshield_sessions", "Sessions.").Set(2)
	r.GaugeFunc("sdnshield_pull", "Pulled.", func() float64 { return 1.5 })
	r.Histogram("sdnshield_lat_seconds", "Latency.").Observe(3 * time.Microsecond)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE sdnshield_checks_total counter",
		`sdnshield_checks_total{decision="allow"} 3`,
		`sdnshield_checks_total{decision="deny"} 1`,
		"sdnshield_sessions 2",
		"sdnshield_pull 1.5",
		`sdnshield_lat_seconds_bucket{le="+Inf"} 1`,
		"sdnshield_lat_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestTotalOf(t *testing.T) {
	r := NewRegistry()
	r.Counter("t_total", "h", "kind", "a").Add(2)
	r.Counter("t_total", "h", "kind", "b").Add(5)
	r.Histogram("t_seconds", "h").Observe(time.Microsecond)
	if got := r.TotalOf("t_total"); got != 7 {
		t.Fatalf("TotalOf counter = %v, want 7", got)
	}
	if got := r.TotalOf("t_seconds"); got != 1 {
		t.Fatalf("TotalOf histogram = %v, want 1", got)
	}
	if got := r.TotalOfLabeled("t_total", "kind", "b"); got != 5 {
		t.Fatalf("TotalOfLabeled = %v, want 5", got)
	}
	if got := r.TotalOf("missing"); got != 0 {
		t.Fatalf("TotalOf missing = %v, want 0", got)
	}
}

func TestConcurrentRegistryAndScrape(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := r.Counter("conc_total", "h", "g", string(rune('a'+g)))
			h := r.Histogram("conc_seconds", "h")
			for i := 0; i < 500; i++ {
				c.Inc()
				h.Observe(time.Duration(i) * time.Microsecond)
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				var b strings.Builder
				_ = r.WritePrometheus(&b)
				_ = r.Snapshot()
			}
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r.Counter("conc_total", "h", "g", string(rune('a'+g))).Add(1)
		}(g)
	}
	// Wait for the writers, then stop the scraper.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for i := 0; ; i++ {
		if r.TotalOf("conc_total") >= 4*501 {
			break
		}
		if i > 1000 {
			t.Fatal("writers never finished")
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	<-done
	if got := r.TotalOf("conc_total"); got != 4*501 {
		t.Fatalf("TotalOf = %v, want %d", got, 4*501)
	}
}

func TestMetricKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dual", "h")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("dual", "h")
}

func TestExemplarPublishAndRefreshGate(t *testing.T) {
	h := NewRegistry().Histogram("exemplar_seconds", "h")
	base := time.Now()
	tr1 := &Trace{ID: "tr-1", Op: "op", Start: base}
	h.ObserveTraced(2*time.Microsecond, tr1)

	bucketExemplar := func() *Exemplar {
		for _, b := range h.Snapshot().Buckets {
			if b.Exemplar != nil {
				return b.Exemplar
			}
		}
		return nil
	}
	ex := bucketExemplar()
	if ex == nil || ex.TraceID != "tr-1" {
		t.Fatalf("exemplar = %+v, want trace tr-1", ex)
	}
	if !ex.Time.Equal(base) {
		t.Errorf("exemplar time = %v, want the trace start %v", ex.Time, base)
	}

	// A trace starting inside the refresh window must not replace it.
	h.ObserveTraced(2*time.Microsecond, &Trace{ID: "tr-2", Op: "op", Start: base.Add(exemplarMinAge / 2)})
	if ex = bucketExemplar(); ex == nil || ex.TraceID != "tr-1" {
		t.Fatalf("fresh exemplar was replaced: %+v", ex)
	}

	// One starting after the window replaces it.
	h.ObserveTraced(2*time.Microsecond, &Trace{ID: "tr-3", Op: "op", Start: base.Add(2 * exemplarMinAge)})
	if ex = bucketExemplar(); ex == nil || ex.TraceID != "tr-3" {
		t.Fatalf("stale exemplar not replaced: %+v", ex)
	}
}

func TestExemplarSteadyStateDoesNotAllocate(t *testing.T) {
	h := NewRegistry().Histogram("exemplar_alloc_seconds", "h")
	tr := &Trace{ID: "tr-alloc", Op: "op", Start: time.Now()}
	h.ObserveTraced(2*time.Microsecond, tr) // prime the exemplar
	allocs := testing.AllocsPerRun(1000, func() {
		h.ObserveTraced(2*time.Microsecond, tr)
	})
	if allocs != 0 {
		t.Fatalf("traced observation allocates %v per call in steady state", allocs)
	}
}
