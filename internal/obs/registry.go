package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// MetricKind discriminates the instrument types a family can hold.
type MetricKind uint8

// Instrument kinds.
const (
	KindCounter MetricKind = iota
	KindGauge
	KindGaugeFunc
	KindHistogram
)

// String names the kind in Prometheus TYPE terms.
func (k MetricKind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge, KindGaugeFunc:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// series is one labeled instrument inside a family.
type series struct {
	labels  string // canonical rendered label set, e.g. `app="fw",op="x"`
	counter *Counter
	gauge   *Gauge
	gfunc   func() float64
	hist    *Histogram
}

// family is all series sharing one metric name.
type family struct {
	name, help string
	kind       MetricKind

	mu     sync.RWMutex
	series map[string]*series
	order  []string // insertion-ordered keys, sorted at exposition time
}

// Registry holds metric families and renders them. Instrument lookup is
// cheap but not free (a read lock and a map hit), so hot paths should
// obtain their instruments once and cache the pointers — creation is
// idempotent, the same (name, labels) always yields the same instrument.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// def is the process-wide default registry every package-level instrument
// lives in (the expvar model: zero wiring, one scrape surface).
var def = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return def }

// labelKey canonicalizes alternating key/value label pairs. Pairs are
// sorted by key so label order at the call site never splits a series.
func labelKey(pairs []string) string {
	if len(pairs) == 0 {
		return ""
	}
	if len(pairs)%2 != 0 {
		panic("obs: odd label pair count")
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		kvs = append(kvs, kv{pairs[i], pairs[i+1]})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	var b strings.Builder
	for i, p := range kvs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`=`)
		b.WriteString(strconv.Quote(p.v))
	}
	return b.String()
}

// getFamily returns the named family, creating it with the given kind and
// help on first use. Re-registering under a different kind is a
// programming error and panics.
func (r *Registry) getFamily(name, help string, kind MetricKind) *family {
	r.mu.RLock()
	f, ok := r.families[name]
	r.mu.RUnlock()
	if ok {
		if f.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %v (was %v)", name, kind, f.kind))
		}
		return f
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok = r.families[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %v (was %v)", name, kind, f.kind))
		}
		return f
	}
	f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
	r.families[name] = f
	return f
}

// getSeries returns the family's series for the label set, creating it
// via mk on first use.
func (f *family) getSeries(pairs []string, mk func() *series) *series {
	key := labelKey(pairs)
	f.mu.RLock()
	s, ok := f.series[key]
	f.mu.RUnlock()
	if ok {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok = f.series[key]; ok {
		return s
	}
	s = mk()
	s.labels = key
	f.series[key] = s
	f.order = append(f.order, key)
	return s
}

// Counter returns (creating on first use) the counter series for the
// name and alternating key/value label pairs.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	f := r.getFamily(name, help, KindCounter)
	return f.getSeries(labels, func() *series { return &series{counter: newCounter()} }).counter
}

// Gauge returns (creating on first use) the gauge series.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	f := r.getFamily(name, help, KindGauge)
	return f.getSeries(labels, func() *series { return &series{gauge: newGauge()} }).gauge
}

// GaugeFunc registers a gauge whose value is pulled from fn at scrape
// time (queue depths, goroutine counts). Re-registering the same series
// replaces the function.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	f := r.getFamily(name, help, KindGaugeFunc)
	s := f.getSeries(labels, func() *series { return &series{} })
	f.mu.Lock()
	s.gfunc = fn
	f.mu.Unlock()
}

// Histogram returns (creating on first use) the latency histogram series.
func (r *Registry) Histogram(name, help string, labels ...string) *Histogram {
	f := r.getFamily(name, help, KindHistogram)
	return f.getSeries(labels, func() *series { return &series{hist: newHistogram()} }).hist
}

// ---------------------------------------------------------------------------
// Exposition

// formatLE renders a bucket bound the Prometheus way.
func formatLE(le float64) string {
	if math.IsInf(le, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(le, 'g', -1, 64)
}

// joinLabels merges a series' base labels with one extra pair (le).
func joinLabels(base, extra string) string {
	if base == "" {
		return extra
	}
	if extra == "" {
		return base
	}
	return base + "," + extra
}

// WritePrometheus renders every family in Prometheus text exposition
// format (version 0.0.4), families and series in sorted order so scrapes
// diff cleanly.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	r.mu.RUnlock()
	sort.Strings(names)
	for _, name := range names {
		r.mu.RLock()
		f := r.families[name]
		r.mu.RUnlock()
		if err := f.writePrometheus(w); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) snapshotSeries() []*series {
	f.mu.RLock()
	defer f.mu.RUnlock()
	keys := append([]string(nil), f.order...)
	sort.Strings(keys)
	out := make([]*series, 0, len(keys))
	for _, k := range keys {
		out = append(out, f.series[k])
	}
	return out
}

func (f *family) writePrometheus(w io.Writer) error {
	all := f.snapshotSeries()
	if len(all) == 0 {
		return nil
	}
	if f.help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
		return err
	}
	for _, s := range all {
		switch f.kind {
		case KindCounter:
			if err := writeSample(w, f.name, s.labels, float64(s.counter.Value())); err != nil {
				return err
			}
		case KindGauge:
			if err := writeSample(w, f.name, s.labels, float64(s.gauge.Value())); err != nil {
				return err
			}
		case KindGaugeFunc:
			fn := s.gfunc
			v := 0.0
			if fn != nil {
				v = fn()
			}
			if err := writeSample(w, f.name, s.labels, v); err != nil {
				return err
			}
		case KindHistogram:
			snap := s.hist.Snapshot()
			for _, b := range snap.Buckets {
				le := joinLabels(s.labels, `le=`+strconv.Quote(formatLE(b.LE)))
				if err := writeSample(w, f.name+"_bucket", le, float64(b.Count)); err != nil {
					return err
				}
			}
			if err := writeSample(w, f.name+"_sum", s.labels, snap.Sum); err != nil {
				return err
			}
			if err := writeSample(w, f.name+"_count", s.labels, float64(snap.Count)); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSample(w io.Writer, name, labels string, v float64) error {
	var err error
	if labels == "" {
		_, err = fmt.Fprintf(w, "%s %s\n", name, strconv.FormatFloat(v, 'g', -1, 64))
	} else {
		_, err = fmt.Fprintf(w, "%s{%s} %s\n", name, labels, strconv.FormatFloat(v, 'g', -1, 64))
	}
	return err
}

// ---------------------------------------------------------------------------
// Snapshot

// SeriesSnapshot is one series of a registry snapshot: a merged,
// point-in-time view suitable for JSON exposition or programmatic
// assertions in tests.
type SeriesSnapshot struct {
	Name      string             `json:"name"`
	Labels    string             `json:"labels,omitempty"`
	Kind      string             `json:"kind"`
	Value     float64            `json:"value,omitempty"`
	Histogram *HistogramSnapshot `json:"histogram,omitempty"`
}

// Snapshot merges every instrument into a sorted, self-contained slice.
func (r *Registry) Snapshot() []SeriesSnapshot {
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	r.mu.RUnlock()
	sort.Strings(names)
	var out []SeriesSnapshot
	for _, name := range names {
		r.mu.RLock()
		f := r.families[name]
		r.mu.RUnlock()
		for _, s := range f.snapshotSeries() {
			ss := SeriesSnapshot{Name: f.name, Labels: s.labels, Kind: f.kind.String()}
			switch f.kind {
			case KindCounter:
				ss.Value = float64(s.counter.Value())
			case KindGauge:
				ss.Value = float64(s.gauge.Value())
			case KindGaugeFunc:
				if s.gfunc != nil {
					// Non-finite pulls (an empty quantile, a division by
					// zero) would make the whole snapshot unmarshalable.
					if v := s.gfunc(); !math.IsInf(v, 0) && !math.IsNaN(v) {
						ss.Value = v
					}
				}
			case KindHistogram:
				snap := s.hist.Snapshot()
				ss.Histogram = &snap
			}
			out = append(out, ss)
		}
	}
	return out
}

// TotalOf sums a family across all its series: counter/gauge values, or
// observation counts for histograms. The summary lines the CLIs print on
// exit are built from it.
func (r *Registry) TotalOf(name string) float64 {
	r.mu.RLock()
	f, ok := r.families[name]
	r.mu.RUnlock()
	if !ok {
		return 0
	}
	var sum float64
	for _, s := range f.snapshotSeries() {
		switch f.kind {
		case KindCounter:
			sum += float64(s.counter.Value())
		case KindGauge:
			sum += float64(s.gauge.Value())
		case KindGaugeFunc:
			if s.gfunc != nil {
				sum += s.gfunc()
			}
		case KindHistogram:
			sum += float64(s.hist.Count())
		}
	}
	return sum
}

// TotalOfLabeled sums a family across the series whose label set contains
// the given key/value pair.
func (r *Registry) TotalOfLabeled(name, key, value string) float64 {
	r.mu.RLock()
	f, ok := r.families[name]
	r.mu.RUnlock()
	if !ok {
		return 0
	}
	want := key + "=" + strconv.Quote(value)
	var sum float64
	for _, s := range f.snapshotSeries() {
		if !labelSetContains(s.labels, want) {
			continue
		}
		switch f.kind {
		case KindCounter:
			sum += float64(s.counter.Value())
		case KindGauge:
			sum += float64(s.gauge.Value())
		case KindGaugeFunc:
			if s.gfunc != nil {
				sum += s.gfunc()
			}
		case KindHistogram:
			sum += float64(s.hist.Count())
		}
	}
	return sum
}

// labelSetContains reports whether the canonical label string contains
// the exact rendered pair (comma-delimited element match, not substring).
func labelSetContains(labels, pair string) bool {
	for labels != "" {
		elem := labels
		if i := strings.Index(labels, `",`); i >= 0 {
			elem, labels = labels[:i+1], labels[i+2:]
		} else {
			labels = ""
		}
		if elem == pair {
			return true
		}
	}
	return false
}
