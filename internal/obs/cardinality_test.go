package obs

import (
	"fmt"
	"sync"
	"testing"
)

func TestLabelGuardFoldsOverflow(t *testing.T) {
	g := NewLabelGuard(3)
	for _, v := range []string{"a", "b", "c"} {
		if got := g.Value(v); got != v {
			t.Fatalf("Value(%q) = %q, want admitted verbatim", v, got)
		}
	}
	// Full: new values fold, admitted ones keep their series.
	if got := g.Value("d"); got != LabelOverflow {
		t.Fatalf("Value(d) over cap = %q, want %q", got, LabelOverflow)
	}
	if got := g.Value("b"); got != "b" {
		t.Fatalf("admitted value folded after cap: got %q", got)
	}
	if got := g.Value("e"); got != LabelOverflow {
		t.Fatalf("Value(e) over cap = %q, want %q", got, LabelOverflow)
	}
	if g.Admitted() != 3 {
		t.Fatalf("Admitted = %d, want 3", g.Admitted())
	}
	if g.Folded() != 2 {
		t.Fatalf("Folded = %d, want 2", g.Folded())
	}
}

// TestLabelGuardBoundsRegistry is the cardinality-cap guarantee end to
// end: a flood of distinct tenant IDs through a guarded label produces at
// most cap+1 series in the registry (the admitted set plus "_other"), so
// a tenant-ID flood cannot grow the metrics registry without bound.
func TestLabelGuardBoundsRegistry(t *testing.T) {
	reg := NewRegistry()
	g := NewLabelGuard(8)
	for i := 0; i < 1000; i++ {
		tenant := g.Value(fmt.Sprintf("tenant-%04d", i))
		reg.Counter("guard_test_calls_total", "test", "tenant", tenant).Inc()
	}
	series := 0
	overflowCount := 0.0
	for _, s := range reg.Snapshot() {
		if s.Name != "guard_test_calls_total" {
			continue
		}
		series++
		if s.Labels == `tenant="`+LabelOverflow+`"` {
			overflowCount = s.Value
		}
	}
	if series != 9 {
		t.Fatalf("registry holds %d series, want cap+1 = 9", series)
	}
	if overflowCount != 992 {
		t.Fatalf("overflow series = %v increments, want 992", overflowCount)
	}
}

// TestLabelGuardConcurrentChurnNoLostIncrements drives concurrent label
// churn through the guard *and* the registry together: 8 goroutines
// each mint their own stream of distinct tenant IDs and bump a guarded
// counter per ID. Whatever interleaving the race detector provokes, the
// registry must end with exactly cap+1 series, every increment
// accounted for in the total (none lost to a racing admit/fold), and
// the overflow series carrying everything beyond the admitted set.
func TestLabelGuardConcurrentChurnNoLostIncrements(t *testing.T) {
	const (
		workers = 8
		perW    = 500
		cap     = 32
	)
	reg := NewRegistry()
	g := NewLabelGuard(cap)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				// Distinct across all goroutines: churn, not reuse.
				label := g.Value(fmt.Sprintf("tenant-%d-%04d", w, i))
				reg.Counter("churn_test_calls_total", "test", "tenant", label).Inc()
			}
		}(w)
	}
	wg.Wait()

	total := workers * perW
	if got := reg.TotalOf("churn_test_calls_total"); got != float64(total) {
		t.Fatalf("TotalOf = %v, want %d — increments lost under churn", got, total)
	}
	if n := g.Admitted(); n != cap {
		t.Fatalf("Admitted = %d, want exactly the cap (%d)", n, cap)
	}
	series, overflow := 0, 0.0
	for _, s := range reg.Snapshot() {
		if s.Name != "churn_test_calls_total" {
			continue
		}
		series++
		if s.Labels == `tenant="`+LabelOverflow+`"` {
			overflow = s.Value
		}
	}
	if series != cap+1 {
		t.Fatalf("registry holds %d series, want cap+1 = %d", series, cap+1)
	}
	// Every admitted label was distinct, so each admitted series holds
	// exactly one increment and the fold absorbs the rest.
	if want := float64(total - cap); overflow != want {
		t.Fatalf("overflow series = %v increments, want %v", overflow, want)
	}
	if folded := g.Folded(); folded != uint64(total-cap) {
		t.Fatalf("Folded = %d, want %d", folded, total-cap)
	}
}

func TestLabelGuardConcurrent(t *testing.T) {
	g := NewLabelGuard(16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				v := g.Value(fmt.Sprintf("t-%d", i%32))
				if v == "" {
					t.Error("empty value")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if n := g.Admitted(); n != 16 {
		t.Fatalf("Admitted = %d, want exactly the cap (16)", n)
	}
}
