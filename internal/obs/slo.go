package obs

import (
	"math"
	"strconv"
	"sync"
	"time"
)

// The SLO engine turns cumulative metrics into error budgets. Every
// objective — latency, ratio, error rate — reduces to a pair of
// monotonic counters (good events, total events); the engine samples
// those counters on an interval and evaluates compliance over two
// trailing windows. Burn rate is the standard multi-window form:
//
//	burn = (1 - compliance) / (1 - target)
//
// i.e. how many times faster than "exactly on target" the error budget
// is being consumed. A burn of 1 spends the budget exactly at the
// allowed rate; the engine flags a breach only when BOTH the fast and
// the slow window burn past the threshold — fast alone is noise, slow
// alone is stale.

// Objective is one declarative service-level objective: Good and Total
// are pulls of cumulative counters (monotonic, process lifetime);
// Target is the required good/total fraction, e.g. 0.999.
type Objective struct {
	Name        string
	Description string
	Target      float64
	Good        func() float64
	Total       func() float64
}

// LatencyObjective builds an objective "fraction of observations at or
// under threshold ≥ target" over a histogram family (all label sets
// merged), interpolating within the bucket the threshold falls into.
// This is how a "p99 ≤ 50ms" requirement is expressed as an SLO: target
// 0.99, threshold 50ms.
func LatencyObjective(name, desc string, reg *Registry, family string, threshold time.Duration, target float64) Objective {
	if reg == nil {
		reg = Default()
	}
	th := threshold.Seconds()
	return Objective{
		Name:        name,
		Description: desc,
		Target:      target,
		Good:        func() float64 { g, _ := reg.histogramGoodTotal(family, th); return g },
		Total:       func() float64 { _, t := reg.histogramGoodTotal(family, th); return t },
	}
}

// LatencyObjectiveLabeled is LatencyObjective restricted to the series
// whose label set contains the given key/value pair — how a per-tenant
// latency SLO is expressed over a shared histogram family without one
// family per tenant: target the series labeled tenant="acme" only.
func LatencyObjectiveLabeled(name, desc string, reg *Registry, family, labelKey, labelValue string, threshold time.Duration, target float64) Objective {
	if reg == nil {
		reg = Default()
	}
	th := threshold.Seconds()
	return Objective{
		Name:        name,
		Description: desc,
		Target:      target,
		Good:        func() float64 { g, _ := reg.histogramGoodTotalLabeled(family, labelKey, labelValue, th); return g },
		Total:       func() float64 { _, t := reg.histogramGoodTotalLabeled(family, labelKey, labelValue, th); return t },
	}
}

// histogramGoodTotal sums, across every series of a histogram family,
// the (interpolated) observations at or under threshold and the total
// observation count.
func (r *Registry) histogramGoodTotal(name string, thresholdSeconds float64) (good, total float64) {
	return r.histogramGoodTotalFiltered(name, "", thresholdSeconds)
}

// histogramGoodTotalLabeled is histogramGoodTotal over only the series
// whose label set contains the key/value pair.
func (r *Registry) histogramGoodTotalLabeled(name, key, value string, thresholdSeconds float64) (good, total float64) {
	return r.histogramGoodTotalFiltered(name, key+"="+strconv.Quote(value), thresholdSeconds)
}

// histogramGoodTotalFiltered sums good/total across a family's series,
// keeping only those whose canonical label string contains pair ("" keeps
// all).
func (r *Registry) histogramGoodTotalFiltered(name, pair string, thresholdSeconds float64) (good, total float64) {
	r.mu.RLock()
	f, ok := r.families[name]
	r.mu.RUnlock()
	if !ok || f.kind != KindHistogram {
		return 0, 0
	}
	for _, s := range f.snapshotSeries() {
		if pair != "" && !labelSetContains(s.labels, pair) {
			continue
		}
		snap := s.hist.Snapshot()
		good += bucketGoodBelow(snap, thresholdSeconds)
		total += float64(snap.Count)
	}
	return good, total
}

// bucketGoodBelow counts observations at or under threshold from
// cumulative buckets, linearly interpolating inside the straddling
// bucket. Mass in the +Inf bucket is never counted good — when the
// threshold exceeds the largest finite bound the estimate is
// conservative.
func bucketGoodBelow(snap HistogramSnapshot, threshold float64) float64 {
	prevLE, prevCum := 0.0, uint64(0)
	for _, b := range snap.Buckets {
		if threshold >= b.LE {
			prevLE, prevCum = b.LE, b.Count
			continue
		}
		inc := float64(b.Count - prevCum)
		if math.IsInf(b.LE, 1) {
			return float64(prevCum)
		}
		frac := 0.0
		if b.LE > prevLE {
			frac = (threshold - prevLE) / (b.LE - prevLE)
		}
		return float64(prevCum) + inc*frac
	}
	return float64(prevCum)
}

// ---------------------------------------------------------------------------
// Engine

// EngineConfig tunes the evaluation loop. Zero values select defaults:
// 5s interval, 1m fast window, 10m slow window, burn threshold 2.
type EngineConfig struct {
	Interval      time.Duration
	FastWindow    time.Duration
	SlowWindow    time.Duration
	BurnThreshold float64
}

func (c EngineConfig) withDefaults() EngineConfig {
	if c.Interval <= 0 {
		c.Interval = 5 * time.Second
	}
	if c.FastWindow <= 0 {
		c.FastWindow = time.Minute
	}
	if c.SlowWindow <= 0 {
		c.SlowWindow = 10 * time.Minute
	}
	if c.BurnThreshold <= 0 {
		c.BurnThreshold = 2
	}
	return c
}

// ObjectiveStatus is the evaluated error-budget state of one objective,
// as served at /slo and folded into /health.
type ObjectiveStatus struct {
	Name            string  `json:"name"`
	Description     string  `json:"description,omitempty"`
	Target          float64 `json:"target"`
	Compliance      float64 `json:"compliance"` // slow-window good/total
	FastBurn        float64 `json:"fast_burn"`
	SlowBurn        float64 `json:"slow_burn"`
	BudgetRemaining float64 `json:"budget_remaining"` // 1 - slow burn; negative = overspent
	Good            float64 `json:"good"`             // cumulative
	Total           float64 `json:"total"`            // cumulative
	State           string  `json:"state"`            // ok | warn | breach | idle
}

// Objective states.
const (
	StateOK     = "ok"
	StateWarn   = "warn"   // one window burning past threshold
	StateBreach = "breach" // both windows burning past threshold
	StateIdle   = "idle"   // no traffic in the slow window
)

// sloSample is one pull of every objective's counters.
type sloSample struct {
	t     time.Time
	good  []float64
	total []float64
}

// Engine evaluates a set of objectives over multi-window burn rates.
type Engine struct {
	cfg EngineConfig

	mu         sync.Mutex
	objectives []Objective
	samples    []sloSample
	last       []ObjectiveStatus
	breached   map[string]bool
	onBreach   func(ObjectiveStatus)
	onRecover  func(ObjectiveStatus)

	stop     chan struct{}
	stopOnce sync.Once
	unreg    func()
}

// NewEngine builds an engine over the given objectives.
func NewEngine(cfg EngineConfig, objectives ...Objective) *Engine {
	return &Engine{
		cfg:        cfg.withDefaults(),
		objectives: objectives,
		breached:   make(map[string]bool),
		stop:       make(chan struct{}),
	}
}

// SetOnBreach installs the edge-triggered breach callback: fired once
// per objective when it enters StateBreach, re-armed when it leaves.
// This is what feeds the anomaly/bundle triggers.
func (e *Engine) SetOnBreach(fn func(ObjectiveStatus)) {
	e.mu.Lock()
	e.onBreach = fn
	e.mu.Unlock()
}

// SetOnRecover installs the matching edge-triggered recovery callback:
// fired once per objective when it leaves StateBreach.
func (e *Engine) SetOnRecover(fn func(ObjectiveStatus)) {
	e.mu.Lock()
	e.onRecover = fn
	e.mu.Unlock()
}

// Evaluate pulls every objective's counters at the given time and
// recomputes all statuses. It is the loop body of Start, exported so
// tests drive it with a deterministic clock.
func (e *Engine) Evaluate(now time.Time) []ObjectiveStatus {
	e.mu.Lock()
	cur := sloSample{
		t:     now,
		good:  make([]float64, len(e.objectives)),
		total: make([]float64, len(e.objectives)),
	}
	objectives := e.objectives
	e.mu.Unlock()
	// Counter pulls run unlocked: they may grab other subsystems' locks.
	for i, o := range objectives {
		cur.good[i], cur.total[i] = o.Good(), o.Total()
	}
	e.mu.Lock()
	e.samples = append(e.samples, cur)
	// Keep one sample beyond the slow window so a full-width baseline
	// always exists.
	horizon := now.Add(-e.cfg.SlowWindow - e.cfg.Interval)
	for len(e.samples) > 1 && e.samples[1].t.Before(horizon) {
		e.samples = e.samples[1:]
	}
	out := make([]ObjectiveStatus, len(objectives))
	var fired, recovered []ObjectiveStatus
	for i, o := range objectives {
		st := ObjectiveStatus{
			Name: o.Name, Description: o.Description, Target: o.Target,
			Good: cur.good[i], Total: cur.total[i],
		}
		fastOK, fastComp := e.windowCompliance(i, now, e.cfg.FastWindow, cur)
		slowOK, slowComp := e.windowCompliance(i, now, e.cfg.SlowWindow, cur)
		st.FastBurn = burnRate(fastComp, o.Target)
		st.SlowBurn = burnRate(slowComp, o.Target)
		st.Compliance = slowComp
		st.BudgetRemaining = 1 - st.SlowBurn
		switch {
		case !fastOK && !slowOK:
			st.State = StateIdle
			st.Compliance = 1
			st.FastBurn, st.SlowBurn = 0, 0
			st.BudgetRemaining = 1
		case st.FastBurn >= e.cfg.BurnThreshold && st.SlowBurn >= e.cfg.BurnThreshold:
			st.State = StateBreach
		case st.FastBurn >= e.cfg.BurnThreshold || st.SlowBurn >= e.cfg.BurnThreshold:
			st.State = StateWarn
		default:
			st.State = StateOK
		}
		if st.State == StateBreach {
			if !e.breached[o.Name] {
				e.breached[o.Name] = true
				fired = append(fired, st)
			}
		} else if e.breached[o.Name] {
			delete(e.breached, o.Name)
			recovered = append(recovered, st)
		}
		out[i] = st
	}
	e.last = out
	onBreach, onRecover := e.onBreach, e.onRecover
	e.mu.Unlock()
	if onBreach != nil {
		for _, st := range fired {
			onBreach(st)
		}
	}
	if onRecover != nil {
		for _, st := range recovered {
			onRecover(st)
		}
	}
	return out
}

// windowCompliance computes good/total over the trailing window ending
// at cur. The baseline is the newest sample at or before the window
// start (falling back to the oldest retained). Returns ok=false when
// the window saw no traffic.
func (e *Engine) windowCompliance(i int, now time.Time, window time.Duration, cur sloSample) (ok bool, compliance float64) {
	start := now.Add(-window)
	base := e.samples[0]
	for _, s := range e.samples {
		if s.t.After(start) {
			break
		}
		base = s
	}
	dTotal := cur.total[i] - base.total[i]
	if dTotal <= 0 {
		return false, 1
	}
	dGood := cur.good[i] - base.good[i]
	if dGood < 0 {
		dGood = 0
	}
	if dGood > dTotal {
		dGood = dTotal
	}
	return true, dGood / dTotal
}

// burnRate is (1-compliance)/(1-target), the budget consumption speed
// relative to "exactly on target". A target of 1 leaves no budget, so
// any miss is infinite burn — clamped to a large finite value to keep
// JSON marshalable.
func burnRate(compliance, target float64) float64 {
	bad := 1 - compliance
	if bad <= 0 {
		return 0
	}
	allowed := 1 - target
	if allowed <= 0 {
		return 1e9
	}
	b := bad / allowed
	if b > 1e9 {
		b = 1e9
	}
	return b
}

// Status returns the most recent evaluation (nil before the first).
func (e *Engine) Status() []ObjectiveStatus {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]ObjectiveStatus(nil), e.last...)
}

// Start launches the periodic evaluation loop and registers the engine
// as the "slo" component of /health. Stop undoes both.
func (e *Engine) Start() {
	e.mu.Lock()
	if e.unreg == nil {
		e.unreg = RegisterHealth("slo", func() interface{} { return e.Status() })
	}
	e.mu.Unlock()
	go func() {
		tick := time.NewTicker(e.cfg.Interval)
		defer tick.Stop()
		e.Evaluate(time.Now())
		for {
			select {
			case <-e.stop:
				return
			case now := <-tick.C:
				e.Evaluate(now)
			}
		}
	}()
}

// Stop halts the evaluation loop and unregisters the health provider.
func (e *Engine) Stop() {
	e.stopOnce.Do(func() { close(e.stop) })
	e.mu.Lock()
	if e.unreg != nil {
		e.unreg()
		e.unreg = nil
	}
	e.mu.Unlock()
}

// ---------------------------------------------------------------------------
// Default engine

var (
	sloMu  sync.Mutex
	sloDef *Engine
)

// SetDefaultSLO installs the engine /slo serves (nil clears it) and
// returns the previous one.
func SetDefaultSLO(e *Engine) *Engine {
	sloMu.Lock()
	defer sloMu.Unlock()
	prev := sloDef
	sloDef = e
	return prev
}

// DefaultSLO returns the engine /slo serves, or nil when none is set.
func DefaultSLO() *Engine {
	sloMu.Lock()
	defer sloMu.Unlock()
	return sloDef
}
