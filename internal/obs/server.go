package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"
)

// ---------------------------------------------------------------------------
// Health providers

// healthProviders maps a component name (e.g. "shield-1") to a callback
// returning its health snapshot. Shields register themselves on
// construction; the endpoint's /health handler pulls every provider at
// request time so the view is always live.
var (
	healthMu        sync.Mutex
	healthProviders = make(map[string]func() interface{})
)

// RegisterHealth installs a named live health provider and returns its
// unregister function. Registering an existing name replaces it.
func RegisterHealth(name string, fn func() interface{}) (unregister func()) {
	healthMu.Lock()
	healthProviders[name] = fn
	healthMu.Unlock()
	return func() {
		healthMu.Lock()
		delete(healthProviders, name)
		healthMu.Unlock()
	}
}

// HealthSnapshots pulls every registered health provider — the same
// live view /health serves — for embedding in diagnostic bundles.
func HealthSnapshots() map[string]interface{} { return healthSnapshot() }

// healthSnapshot pulls every registered provider.
func healthSnapshot() map[string]interface{} {
	healthMu.Lock()
	names := make([]string, 0, len(healthProviders))
	fns := make(map[string]func() interface{}, len(healthProviders))
	for n, fn := range healthProviders {
		names = append(names, n)
		fns[n] = fn
	}
	healthMu.Unlock()
	sort.Strings(names)
	out := make(map[string]interface{}, len(names))
	for _, n := range names {
		out[n] = fns[n]()
	}
	return out
}

// ---------------------------------------------------------------------------
// Extension handlers

// extHandlers lets packages layered above obs (notably obs/audit) mount
// extra routes on every introspection endpoint without obs importing
// them. Handlers registered before NewHandler runs are included; the
// index page lists their patterns.
var (
	extMu       sync.Mutex
	extHandlers = make(map[string]http.Handler)
)

// RegisterHandler installs an extension route served by every handler
// built afterwards. Registering an existing pattern replaces it.
func RegisterHandler(pattern string, h http.Handler) {
	extMu.Lock()
	extHandlers[pattern] = h
	extMu.Unlock()
}

func extensionRoutes() map[string]http.Handler {
	extMu.Lock()
	defer extMu.Unlock()
	out := make(map[string]http.Handler, len(extHandlers))
	for p, h := range extHandlers {
		out[p] = h
	}
	return out
}

// ---------------------------------------------------------------------------
// HTTP endpoint

// NewHandler builds the introspection mux over a registry and tracer
// (either may be the process defaults):
//
//	/            — plain-text index of the routes below
//	/metrics     — Prometheus text exposition
//	/metrics.json— JSON snapshot of every series (with exemplars)
//	/health      — per-component health (shield containers, quarantine…)
//	/traces      — recent sampled call-path traces, newest first
//	/debug/pprof — the standard Go profiler surface
func NewHandler(reg *Registry, tracer *Tracer) http.Handler {
	if reg == nil {
		reg = Default()
	}
	if tracer == nil {
		tracer = DefaultTracer()
	}
	reg.GaugeFunc("sdnshield_goroutines", "Live goroutines in the controller process.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	mux := http.NewServeMux()
	// The index page is generated from the same registrations the mux
	// serves — a route cannot exist without being listed. Extension
	// routes and builtins alike flow through listed().
	var patterns []string
	listed := func(pattern string, h http.Handler) {
		patterns = append(patterns, pattern)
		mux.Handle(pattern, h)
	}
	for p, h := range extensionRoutes() {
		listed(p, h)
	}
	listed("/metrics", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	}))
	listed("/metrics.json", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, reg.Snapshot())
	}))
	listed("/health", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, healthSnapshot())
	}))
	listed("/traces", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		traces := tracer.Recent()
		// ?corr=<id> and ?op=<name> narrow the ring to the sampled
		// trace(s) matching an audit event, instead of making the
		// operator scan all 256 entries by eye.
		q := r.URL.Query()
		if corrStr := q.Get("corr"); corrStr != "" {
			corr, err := strconv.ParseUint(corrStr, 10, 64)
			if err != nil {
				http.Error(w, "bad corr", http.StatusBadRequest)
				return
			}
			traces = filterTraces(traces, func(t TraceSnapshot) bool { return t.Corr == corr })
		}
		if op := q.Get("op"); op != "" {
			traces = filterTraces(traces, func(t TraceSnapshot) bool { return t.Op == op })
		}
		if tenant := q.Get("tenant"); tenant != "" {
			traces = filterTraces(traces, func(t TraceSnapshot) bool { return t.Tenant == tenant })
		}
		if traces == nil {
			traces = []TraceSnapshot{}
		}
		writeJSON(w, traces)
	}))
	listed("/slo", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		e := DefaultSLO()
		if e == nil {
			writeJSON(w, struct {
				Enabled bool `json:"enabled"`
			}{false})
			return
		}
		st := e.Status()
		if st == nil {
			st = e.Evaluate(time.Now())
		}
		writeJSON(w, struct {
			Enabled    bool              `json:"enabled"`
			Objectives []ObjectiveStatus `json:"objectives"`
		}{true, st})
	}))
	listed("/debug/pprof/", http.HandlerFunc(pprof.Index))
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	sort.Strings(patterns)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("sdnshield telemetry\n\n"))
		for _, p := range patterns {
			_, _ = w.Write([]byte(p + "\n"))
		}
	})
	return mux
}

func filterTraces(in []TraceSnapshot, keep func(TraceSnapshot) bool) []TraceSnapshot {
	out := in[:0:0]
	for _, t := range in {
		if keep(t) {
			out = append(out, t)
		}
	}
	return out
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// Server is a running introspection endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the introspection endpoint on addr (e.g. "127.0.0.1:9090";
// port 0 picks a free port, see Addr). Pass nil reg/tracer for the
// process defaults.
func Serve(addr string, reg *Registry, tracer *Tracer) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: NewHandler(reg, tracer), ReadHeaderTimeout: 5 * time.Second}
	s := &Server{ln: ln, srv: srv}
	go func() { _ = srv.Serve(ln) }()
	return s, nil
}

// Addr returns the endpoint's bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down.
func (s *Server) Close() error { return s.srv.Close() }
