package obs

import (
	"math"
	"runtime"
	"runtime/metrics"
	"strings"
	"testing"
)

func TestRuntimeGaugesReportProcessHealth(t *testing.T) {
	reg := NewRegistry()
	RegisterRuntimeMetrics(reg)
	runtime.GC() // ensure at least one GC cycle has stats

	vals := make(map[string]float64)
	for _, s := range reg.Snapshot() {
		vals[s.Name+"{"+s.Labels+"}"] = s.Value
	}
	if v := vals[`sdnshield_runtime_goroutines{}`]; v < 1 {
		t.Errorf("goroutines gauge = %v, want >= 1", v)
	}
	if v := vals[`sdnshield_runtime_heap_bytes{}`]; v <= 0 {
		t.Errorf("heap bytes gauge = %v, want > 0", v)
	}
	if v := vals[`sdnshield_runtime_alloc_bytes_total{}`]; v <= 0 {
		t.Errorf("alloc bytes gauge = %v, want > 0", v)
	}
	if v := vals[`sdnshield_runtime_gc_cycles_total{}`]; v < 1 {
		t.Errorf("gc cycles gauge = %v, want >= 1", v)
	}
	if _, ok := vals[`sdnshield_runtime_sched_latency_seconds{quantile="0.5"}`]; !ok {
		t.Error("sched latency p50 series missing")
	}
	if _, ok := vals[`sdnshield_runtime_sched_latency_seconds{quantile="0.99"}`]; !ok {
		t.Error("sched latency p99 series missing")
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"sdnshield_runtime_goroutines",
		"sdnshield_runtime_heap_bytes",
		"sdnshield_runtime_gc_pause_seconds_total",
		`sdnshield_runtime_sched_latency_seconds{quantile="0.99"}`,
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

func TestRuntimeGaugesInDefaultRegistry(t *testing.T) {
	found := false
	for _, s := range Default().Snapshot() {
		if s.Name == "sdnshield_runtime_heap_bytes" {
			found = true
		}
	}
	if !found {
		t.Error("default registry lacks runtime gauges")
	}
}

func TestHistQuantileAndApproxSum(t *testing.T) {
	h := &metrics.Float64Histogram{
		Counts:  []uint64{10, 80, 10},
		Buckets: []float64{math.Inf(-1), 0.001, 0.002, math.Inf(1)},
	}
	if q := histQuantile(h, 0.5); q != 0.0015 {
		t.Errorf("p50 = %v, want 0.0015", q)
	}
	// p99 lands in the overflow bucket, clamped to its finite edge.
	if q := histQuantile(h, 0.99); q != 0.002 {
		t.Errorf("p99 = %v, want 0.002", q)
	}
	want := 10*0.001 + 80*0.0015 + 10*0.002
	if s := histApproxSum(h); math.Abs(s-want) > 1e-12 {
		t.Errorf("approx sum = %v, want %v", s, want)
	}
	empty := &metrics.Float64Histogram{Counts: []uint64{0}, Buckets: []float64{0, 1}}
	if q := histQuantile(empty, 0.5); q != 0 {
		t.Errorf("empty histogram quantile = %v", q)
	}
}
