package span

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"sdnshield/internal/obs"
)

func TestContextStringParseRoundTrip(t *testing.T) {
	c := Context{TraceID: 9001, SpanID: 7, Parent: 3}
	got, ok := Parse(c.String())
	if !ok || got != c {
		t.Fatalf("Parse(%q) = (%+v, %v), want (%+v, true)", c.String(), got, ok, c)
	}
	// Whitespace from a hand-set header is tolerated.
	if got, ok := Parse("  12-34-0 \n"); !ok || got != (Context{TraceID: 12, SpanID: 34}) {
		t.Fatalf("Parse with whitespace = (%+v, %v)", got, ok)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, s := range []string{
		"",            // missing header
		"1-2",         // too few fields
		"1-2-3-4",     // too many fields
		"a-b-c",       // not numbers
		"1-2-",        // empty field
		"0-1-2",       // zero trace ID is "not traced"
		"-1-2-3",      // negative
		"1-2-3 extra", // trailing junk
	} {
		if c, ok := Parse(s); ok || c.Valid() {
			t.Errorf("Parse(%q) = (%+v, %v), want rejection", s, c, ok)
		}
	}
}

// TestNilSpanSafe proves the no-op contract: every constructor that
// declines to trace returns nil, and every method is safe on nil, so
// call sites never branch on sampling.
func TestNilSpanSafe(t *testing.T) {
	if sp := Root(0, "zero"); sp != nil {
		t.Fatal("Root(0, ...) should refuse to trace")
	}
	if sp := Start(Context{}, "orphan"); sp != nil {
		t.Fatal("Start with invalid parent should refuse to trace")
	}
	prev := SetEnabled(false)
	defer SetEnabled(prev)
	if sp := Root(77, "disabled"); sp != nil {
		t.Fatal("Root with the layer off should refuse to trace")
	}
	var sp *Span
	if c := sp.Context(); c.Valid() {
		t.Fatalf("nil span Context = %+v, want zero", c)
	}
	sp.Annotate("ignored")
	sp.End()
	Add(Context{}, "noop", time.Now(), time.Millisecond)
}

func collect(c *Collector, traceID, spanID uint64, name string, start time.Time) {
	c.Collect(Record{TraceID: traceID, SpanID: spanID, Name: name, Start: start})
}

func TestCollectorEvictsOldestTrace(t *testing.T) {
	c := NewCollector(2, 8)
	now := time.Now()
	collect(c, 1, 1, "a", now)
	collect(c, 2, 2, "b", now)
	collect(c, 3, 3, "c", now) // evicts trace 1
	if got := c.Trace(1); got != nil {
		t.Fatalf("evicted trace 1 still retained: %+v", got)
	}
	if c.Trace(2) == nil || c.Trace(3) == nil {
		t.Fatal("traces 2 and 3 should survive eviction")
	}
	ids := c.TraceIDs()
	if len(ids) != 2 || ids[0].TraceID != 3 || ids[1].TraceID != 2 {
		t.Fatalf("TraceIDs = %+v, want newest-first [3, 2]", ids)
	}
}

func TestCollectorDropsSpansOfFullTrace(t *testing.T) {
	c := NewCollector(4, 2)
	now := time.Now()
	for i := uint64(1); i <= 5; i++ {
		collect(c, 9, i, "s", now)
	}
	if got := len(c.Trace(9)); got != 2 {
		t.Fatalf("full trace retained %d spans, want 2", got)
	}
	if got := c.Dropped(); got != 3 {
		t.Fatalf("Dropped = %d, want 3", got)
	}
}

func TestTraceSortedByStart(t *testing.T) {
	c := NewCollector(4, 8)
	base := time.Now()
	// Collected out of order; Trace must sort by start, span ID on ties.
	collect(c, 5, 30, "third", base.Add(2*time.Second))
	collect(c, 5, 10, "first", base)
	collect(c, 5, 21, "tie-b", base.Add(time.Second))
	collect(c, 5, 20, "tie-a", base.Add(time.Second))
	got := c.Trace(5)
	want := []string{"first", "tie-a", "tie-b", "third"}
	if len(got) != len(want) {
		t.Fatalf("Trace retained %d spans, want %d", len(got), len(want))
	}
	for i, name := range want {
		if got[i].Name != name {
			t.Fatalf("Trace[%d] = %q, want %q (full: %+v)", i, got[i].Name, name, got)
		}
	}
}

type captureSink struct{ recs []Record }

func (s *captureSink) Write(r Record) error { s.recs = append(s.recs, r); return nil }

func TestCollectorForwardsToSink(t *testing.T) {
	c := NewCollector(2, 2)
	sink := &captureSink{}
	c.SetSink(sink)
	collect(c, 1, 1, "exported", time.Now())
	if len(sink.recs) != 1 || sink.recs[0].Name != "exported" {
		t.Fatalf("sink received %+v", sink.recs)
	}
	c.SetSink(nil)
	collect(c, 1, 2, "after-detach", time.Now())
	if len(sink.recs) != 1 {
		t.Fatalf("detached sink still receiving: %+v", sink.recs)
	}
}

func TestFileSinkJSONLAndRotation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "spans.jsonl")
	s, err := NewFileSink(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	rec := Record{TraceID: 42, SpanID: 1, Name: "sink-span", Start: time.Now(), Duration: time.Millisecond}
	for i := 0; i < 5; i++ {
		rec.SpanID = uint64(i + 1)
		if err := s.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(rec); err == nil {
		t.Fatal("Write after Close should fail")
	}
	// Rotation kicked in (each line is ~130 bytes against a 256 budget).
	// Only one prior generation is kept, so not all five records
	// survive — but both files must hold decodable Records, and the
	// newest write must be in the live file.
	if _, err := os.Stat(path + ".1"); err != nil {
		t.Fatalf("rotated file missing: %v", err)
	}
	lines, lastID := 0, uint64(0)
	for _, p := range []string{path + ".1", path} {
		f, err := os.Open(p)
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			var got Record
			if err := json.Unmarshal(sc.Bytes(), &got); err != nil {
				t.Fatalf("%s line %d: %v", p, lines, err)
			}
			if got.TraceID != 42 || got.Name != "sink-span" {
				t.Fatalf("%s holds stray record %+v", p, got)
			}
			lines++
			lastID = got.SpanID
		}
		f.Close()
	}
	if lines < 2 {
		t.Fatalf("sink files hold %d records, want >= 2 across the rotation", lines)
	}
	if lastID != 5 {
		t.Fatalf("live sink file ends at span %d, want the newest write 5", lastID)
	}
}

// TestRecordTraceConversion checks the obs.Tracer bridge: a finished
// mediated-call snapshot becomes one parent span plus one child per
// tracer stage, all under the call's correlation ID.
func TestRecordTraceConversion(t *testing.T) {
	const traceID = uint64(1)<<52 + 991
	start := time.Now().Add(-time.Second)
	RecordTrace(traceID, obs.TraceSnapshot{
		Op: "flow_mod", Start: start, Duration: 3 * time.Millisecond,
		Spans: []obs.SpanRecord{
			{Name: "permission_check", Offset: 0, Duration: time.Millisecond},
			{Name: "kernel", Offset: time.Millisecond, Duration: 2 * time.Millisecond},
		},
	})
	spans := DefaultCollector().Trace(traceID)
	if len(spans) != 3 {
		t.Fatalf("RecordTrace retained %d spans, want 3: %+v", len(spans), spans)
	}
	parent := spans[0]
	if parent.Name != "mediated:flow_mod" || parent.Parent != 0 {
		t.Fatalf("parent span = %+v", parent)
	}
	for _, child := range spans[1:] {
		if child.Parent != parent.SpanID {
			t.Fatalf("stage %q not parented to the call span: %+v", child.Name, child)
		}
	}
	if spans[2].Name != "kernel" || !spans[2].Start.Equal(start.Add(time.Millisecond)) {
		t.Fatalf("stage offset lost: %+v", spans[2])
	}

	// Zero correlation (unsampled path) records nothing.
	RecordTrace(0, obs.TraceSnapshot{Op: "ignored"})
	if got := DefaultCollector().Trace(0); got != nil {
		t.Fatalf("RecordTrace(0, ...) recorded %+v", got)
	}
}
