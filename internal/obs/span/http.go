package span

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"

	"sdnshield/internal/obs"
)

// The span surface mounts onto every obs introspection endpoint via the
// extension-route registry, exactly like the audit journal's /audit:
//
//	/trace          — index of retained traces, newest first
//	/trace/<id>     — one trace's span timeline, sorted by start
func init() {
	obs.RegisterHandler("/trace", http.HandlerFunc(handleIndex))
	obs.RegisterHandler("/trace/", http.HandlerFunc(handleTrace))
}

func handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/trace" {
		http.NotFound(w, r)
		return
	}
	traces := def.TraceIDs()
	if tenant := r.URL.Query().Get("tenant"); tenant != "" {
		kept := traces[:0:0]
		for _, ti := range traces {
			if ti.Tenant == tenant {
				kept = append(kept, ti)
			}
		}
		traces = kept
	}
	if traces == nil {
		traces = []TraceInfo{}
	}
	writeJSON(w, struct {
		Traces  []TraceInfo `json:"traces"`
		Dropped uint64      `json:"dropped_spans"`
	}{traces, def.Dropped()})
}

func handleTrace(w http.ResponseWriter, r *http.Request) {
	idStr := strings.TrimPrefix(r.URL.Path, "/trace/")
	id, err := strconv.ParseUint(idStr, 10, 64)
	if err != nil || id == 0 {
		http.Error(w, "bad trace id", http.StatusBadRequest)
		return
	}
	spans := def.Trace(id)
	if spans == nil {
		http.Error(w, "trace not found", http.StatusNotFound)
		return
	}
	writeJSON(w, struct {
		TraceID uint64   `json:"trace_id"`
		Tenant  string   `json:"tenant,omitempty"`
		Spans   []Record `json:"spans"`
	}{id, def.TenantOf(id), spans})
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
