// Package span is SDNShield's causal tracing layer: where obs.Tracer
// follows one mediated call inside one process, span follows one
// *operation* — an async install, a replication round — across
// goroutines, WAL-persisted job executions and HTTP node boundaries.
//
// The unification that makes it forensic rather than merely diagnostic:
// a span's trace ID IS the audit correlation ID minted at the operation
// boundary (audit.NextCorr()). Every audit event, recorder frame and
// span of one install therefore share one number, so /trace/<corr>
// answers "where did the install behind this audit event spend its
// time" with no join table.
//
// Propagation is explicit: a Context {traceID, spanID, parent} travels
// in function arguments, in job WAL records (internal/jobs), and in the
// X-Sdnshield-Trace HTTP header. Spans land in a bounded process-wide
// collector served at /trace/<traceID>, and optionally in a rotating
// JSONL file sink alongside the audit journal.
//
// Layering: span imports only obs (for TraceSnapshot conversion and the
// extension-route registry); everything above — jobs, market,
// isolation, the CLIs — imports span, never the reverse.
package span

import (
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sdnshield/internal/obs"
)

// Header is the HTTP header carrying a trace context across nodes, as
// rendered by Context.String and parsed by Parse.
const Header = "X-Sdnshield-Trace"

// Context is the propagating identity of one span: which trace it
// belongs to, its own ID, and its causal parent (0 for a root). The
// zero Context is "not traced" and makes every operation on it a no-op.
type Context struct {
	TraceID uint64 `json:"trace_id,omitempty"`
	SpanID  uint64 `json:"span_id,omitempty"`
	Parent  uint64 `json:"parent,omitempty"`
}

// Valid reports whether the context belongs to a trace.
func (c Context) Valid() bool { return c.TraceID != 0 }

// String renders the context for the wire: "traceID-spanID-parent".
func (c Context) String() string {
	return strconv.FormatUint(c.TraceID, 10) + "-" +
		strconv.FormatUint(c.SpanID, 10) + "-" +
		strconv.FormatUint(c.Parent, 10)
}

// Parse decodes a Context rendered by String. Malformed or empty input
// returns (zero, false) — a missing header is not an error.
func Parse(s string) (Context, bool) {
	parts := strings.Split(strings.TrimSpace(s), "-")
	if len(parts) != 3 {
		return Context{}, false
	}
	var vals [3]uint64
	for i, p := range parts {
		v, err := strconv.ParseUint(p, 10, 64)
		if err != nil {
			return Context{}, false
		}
		vals[i] = v
	}
	c := Context{TraceID: vals[0], SpanID: vals[1], Parent: vals[2]}
	if !c.Valid() {
		return Context{}, false
	}
	return c, true
}

// enabled gates the whole layer. Default on: span creation happens off
// the mediated-call fast path (HTTP ingress, job workers, and the
// already-sampled traced subset of mediated calls), so the steady-state
// cost is bounded by operation rate, not call rate.
var enabled atomic.Bool

func init() {
	enabled.Store(true)
}

// On reports whether the span layer is recording.
func On() bool { return enabled.Load() }

// SetEnabled flips the layer's recording gate and returns the previous
// state. Disabling stops new spans; retained traces stay queryable.
func SetEnabled(v bool) bool { return enabled.Swap(v) }

// spanSeq mints span IDs, process-wide so IDs stay unique across
// components recording into one collector.
var spanSeq atomic.Uint64

func nextSpanID() uint64 { return spanSeq.Add(1) }

// node is the name stamped on every record this process emits, so a
// multi-node trace shows which side of a sync pull each span ran on.
var nodeName atomic.Value // string

// SetNode names this process in emitted span records ("" omits it).
// The CLIs wire it to -market-node.
func SetNode(name string) { nodeName.Store(name) }

func node() string {
	if v, ok := nodeName.Load().(string); ok {
		return v
	}
	return ""
}

// Record is one finished span as retained and exported: self-contained
// (absolute start, duration, names) so the JSONL sink needs no
// surrounding state.
type Record struct {
	TraceID  uint64        `json:"trace_id"`
	SpanID   uint64        `json:"span_id"`
	Parent   uint64        `json:"parent,omitempty"`
	Name     string        `json:"name"`
	Node     string        `json:"node,omitempty"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Detail   string        `json:"detail,omitempty"`
}

// Span is one in-flight stage of a trace. A nil Span is valid and makes
// every method a no-op, so call sites never branch on sampling.
type Span struct {
	rec Record
}

// Root opens the root span of a new trace. traceID is the operation's
// audit correlation ID — minting it (audit.NextCorr) is the caller's
// job, which is exactly what keeps traces and audit events unified.
// Returns nil (a valid no-op span) when the layer is off or traceID is
// zero.
func Root(traceID uint64, name string) *Span {
	if traceID == 0 || !enabled.Load() {
		return nil
	}
	return &Span{rec: Record{
		TraceID: traceID, SpanID: nextSpanID(), Name: name, Start: time.Now(),
	}}
}

// Start opens a child span under parent. An invalid parent (zero
// Context) or a disabled layer returns nil — the no-op span.
func Start(parent Context, name string) *Span {
	if !parent.Valid() || !enabled.Load() {
		return nil
	}
	return &Span{rec: Record{
		TraceID: parent.TraceID, SpanID: nextSpanID(), Parent: parent.SpanID,
		Name: name, Start: time.Now(),
	}}
}

// Context returns the span's propagation context (zero for nil).
func (s *Span) Context() Context {
	if s == nil {
		return Context{}
	}
	return Context{TraceID: s.rec.TraceID, SpanID: s.rec.SpanID, Parent: s.rec.Parent}
}

// Annotate attaches a human-oriented detail string to the span.
func (s *Span) Annotate(detail string) {
	if s == nil {
		return
	}
	s.rec.Detail = detail
}

// End seals the span and hands it to the default collector. Safe on nil.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.rec.Duration = time.Since(s.rec.Start)
	s.rec.Node = node()
	def.Collect(s.rec)
}

// Add records an externally timed child span — used when the start and
// duration already exist for metric purposes (job queue wait, the
// tracer's mediated-call stages), so tracing adds no clock reads of its
// own. No-op on an invalid parent or a disabled layer.
func Add(parent Context, name string, start time.Time, d time.Duration) {
	if !parent.Valid() || !enabled.Load() {
		return
	}
	def.Collect(Record{
		TraceID: parent.TraceID, SpanID: nextSpanID(), Parent: parent.SpanID,
		Name: name, Node: node(), Start: start, Duration: d,
	})
}

// RecordTrace folds a finished mediated-call trace (the obs.Tracer's
// sampled view of one call) into the span layer under the call's
// correlation ID: one parent span for the call, one child per tracer
// stage. The isolation layer calls it only for the traced subset, so
// the unsampled mediated-call path never reaches this code.
func RecordTrace(traceID uint64, snap obs.TraceSnapshot) {
	if traceID == 0 || !enabled.Load() {
		return
	}
	parent := nextSpanID()
	n := node()
	def.Collect(Record{
		TraceID: traceID, SpanID: parent, Name: "mediated:" + snap.Op,
		Node: n, Start: snap.Start, Duration: snap.Duration,
	})
	for _, sp := range snap.Spans {
		def.Collect(Record{
			TraceID: traceID, SpanID: nextSpanID(), Parent: parent, Name: sp.Name,
			Node: n, Start: snap.Start.Add(sp.Offset), Duration: sp.Duration,
		})
	}
}

// ---------------------------------------------------------------------------
// Collector

// Sink receives every collected span record — the JSONL file export.
type Sink interface {
	Write(Record) error
}

// Collector retains finished spans grouped by trace in a bounded
// store: at most maxTraces traces (oldest evicted first) of at most
// maxSpans spans each (further spans of a full trace are counted as
// dropped, not retained).
type Collector struct {
	mu        sync.Mutex
	traces    map[uint64]*traceEntry
	order     []uint64 // trace IDs in first-seen order, for eviction
	maxTraces int
	maxSpans  int
	sink      Sink
	dropped   uint64
}

type traceEntry struct {
	tenant string
	spans  []Record
}

// NewCollector builds a collector bounded to maxTraces traces of
// maxSpans spans each (defaults 512 and 256 for values <= 0).
func NewCollector(maxTraces, maxSpans int) *Collector {
	if maxTraces <= 0 {
		maxTraces = 512
	}
	if maxSpans <= 0 {
		maxSpans = 256
	}
	return &Collector{
		traces:    make(map[uint64]*traceEntry),
		maxTraces: maxTraces,
		maxSpans:  maxSpans,
	}
}

// def is the process-wide collector /trace/<id> serves.
var def = NewCollector(0, 0)

// mDropped mirrors the default collector's drop count into /metrics, so
// collector pressure shows up on dashboards without polling /trace.
var mDropped = obs.Default().Counter("sdnshield_span_dropped_total",
	"Spans the default collector refused because their trace hit the span bound.")

func init() {
	obs.Default().GaugeFunc("sdnshield_span_traces_resident",
		"Traces currently retained in the default span collector.",
		func() float64 { return float64(def.TracesResident()) })
}

// DefaultCollector returns the process-wide collector.
func DefaultCollector() *Collector { return def }

// Collect retains one finished span and forwards it to the sink, if
// attached.
func (c *Collector) Collect(rec Record) {
	c.mu.Lock()
	e, ok := c.traces[rec.TraceID]
	if !ok {
		if len(c.order) >= c.maxTraces {
			oldest := c.order[0]
			c.order = c.order[1:]
			delete(c.traces, oldest)
		}
		e = &traceEntry{}
		c.traces[rec.TraceID] = e
		c.order = append(c.order, rec.TraceID)
	}
	if len(e.spans) >= c.maxSpans {
		c.dropped++
		c.mu.Unlock()
		if c == def {
			mDropped.Inc()
		}
		return
	}
	e.spans = append(e.spans, rec)
	sink := c.sink
	c.mu.Unlock()
	if sink != nil {
		_ = sink.Write(rec)
	}
}

// Tag stamps a tenant on a retained (or not-yet-seen) trace, so the
// /trace index and a tenant's scoped endpoints can tell whose operation
// each trace is. Tagging before the first span arrives is fine — the
// entry is created empty and the spans attach to it later.
//
// Trusted callers only: Tag overwrites any existing tag and
// materializes an entry in the bounded store, so it must never be fed a
// client-controlled trace ID (that would let one tenant take ownership
// of another's trace, or flood-evict retained traces). Ingress code
// must check TenantOf before continuing an inbound trace context.
func (c *Collector) Tag(traceID uint64, tenant string) {
	if traceID == 0 || tenant == "" {
		return
	}
	c.mu.Lock()
	e, ok := c.traces[traceID]
	if !ok {
		if len(c.order) >= c.maxTraces {
			oldest := c.order[0]
			c.order = c.order[1:]
			delete(c.traces, oldest)
		}
		e = &traceEntry{}
		c.traces[traceID] = e
		c.order = append(c.order, traceID)
	}
	e.tenant = tenant
	c.mu.Unlock()
}

// TenantOf returns the tenant tagged on a retained trace ("" when the
// trace is unknown or untagged).
func (c *Collector) TenantOf(traceID uint64) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.traces[traceID]; ok {
		return e.tenant
	}
	return ""
}

// Tag stamps a tenant on a trace in the process-wide collector.
func Tag(traceID uint64, tenant string) { def.Tag(traceID, tenant) }

// TenantOf reports the tenant tagged on a trace in the process-wide
// collector.
func TenantOf(traceID uint64) string { return def.TenantOf(traceID) }

// Trace returns a trace's spans sorted by start time (ties broken by
// span ID, which is mint order), or nil when the trace is not retained.
func (c *Collector) Trace(traceID uint64) []Record {
	c.mu.Lock()
	e, ok := c.traces[traceID]
	if !ok {
		c.mu.Unlock()
		return nil
	}
	out := append([]Record(nil), e.spans...)
	c.mu.Unlock()
	sort.Slice(out, func(i, k int) bool {
		if !out[i].Start.Equal(out[k].Start) {
			return out[i].Start.Before(out[k].Start)
		}
		return out[i].SpanID < out[k].SpanID
	})
	return out
}

// TraceIDs returns the retained trace IDs, newest-first, with each
// trace's span count.
func (c *Collector) TraceIDs() []TraceInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]TraceInfo, 0, len(c.order))
	for i := len(c.order) - 1; i >= 0; i-- {
		id := c.order[i]
		e := c.traces[id]
		out = append(out, TraceInfo{TraceID: id, Tenant: e.tenant, Spans: len(e.spans)})
	}
	return out
}

// TraceInfo is the /trace index listing of one retained trace.
type TraceInfo struct {
	TraceID uint64 `json:"trace_id"`
	Tenant  string `json:"tenant,omitempty"`
	Spans   int    `json:"spans"`
}

// Dropped reports spans refused because their trace hit the span bound.
func (c *Collector) Dropped() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// TracesResident reports how many traces the collector currently
// retains.
func (c *Collector) TracesResident() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.traces)
}

// SetSink attaches (or, with nil, detaches) the collector's export sink.
func (c *Collector) SetSink(s Sink) {
	c.mu.Lock()
	c.sink = s
	c.mu.Unlock()
}
