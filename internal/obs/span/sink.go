package span

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// FileSink exports span records as JSON Lines, one record per line,
// alongside the audit journal: same append-only, same single-file
// rotation, so operators ship both with the same tooling.
type FileSink struct {
	mu       sync.Mutex
	f        *os.File
	path     string
	size     int64
	maxBytes int64
}

// DefaultMaxSinkBytes bounds a sink file before rotation to <path>.1.
const DefaultMaxSinkBytes = 64 << 20

// NewFileSink opens (appending) or creates the JSONL sink at path.
// maxBytes <= 0 selects DefaultMaxSinkBytes.
func NewFileSink(path string, maxBytes int64) (*FileSink, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxSinkBytes
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("span sink: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("span sink: %w", err)
	}
	return &FileSink{f: f, path: path, size: st.Size(), maxBytes: maxBytes}, nil
}

// Write appends one record, rotating the file to <path>.1 when the
// size bound is reached.
func (s *FileSink) Write(rec Record) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return fmt.Errorf("span sink: closed")
	}
	if s.size+int64(len(line)) > s.maxBytes {
		if err := s.rotateLocked(); err != nil {
			return err
		}
	}
	n, err := s.f.Write(line)
	s.size += int64(n)
	return err
}

func (s *FileSink) rotateLocked() error {
	if err := s.f.Close(); err != nil {
		return err
	}
	if err := os.Rename(s.path, s.path+".1"); err != nil && !os.IsNotExist(err) {
		return err
	}
	f, err := os.OpenFile(s.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		s.f = nil
		return err
	}
	s.f = f
	s.size = 0
	return nil
}

// Close flushes and closes the sink file. Further writes fail.
func (s *FileSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Sync()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	s.f = nil
	return err
}
