package obs

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer samples mediated calls and retains the resulting call-path
// traces in a bounded ring. Sampling (1 in Every calls) keeps the
// per-call cost of tracing at a single atomic add for the unsampled
// majority; the ring bounds memory no matter how long the process runs.
type Tracer struct {
	every atomic.Int64  // sample 1 in N starts; <= 0 disables
	n     atomic.Uint64 // start counter driving the sampling decision
	seq   atomic.Uint64 // trace id sequence

	mu   sync.Mutex
	ring []*Trace
	next int
}

// NewTracer builds a tracer retaining the most recent capacity finished
// traces and sampling one in every `every` starts.
func NewTracer(capacity, every int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	t := &Tracer{ring: make([]*Trace, 0, capacity)}
	t.every.Store(int64(every))
	return t
}

// defTracer samples 1 in 16 mediated calls into a 256-trace ring — cheap
// enough to leave on, frequent enough that an attacksim run populates
// /traces.
var defTracer = NewTracer(256, 16)

// DefaultTracer returns the process-wide tracer the isolation layer
// samples mediated calls into.
func DefaultTracer() *Tracer { return defTracer }

// SetSampling adjusts the 1-in-N sampling rate; n <= 0 disables tracing.
func (t *Tracer) SetSampling(n int) { t.every.Store(int64(n)) }

// Start begins a trace for one operation, or returns nil (a valid no-op
// trace) when the call is not sampled. All Trace/Span methods are
// nil-safe so call sites never branch.
func (t *Tracer) Start(op string) *Trace {
	if t == nil || !enabled.Load() {
		return nil
	}
	every := t.every.Load()
	if every <= 0 || t.n.Add(1)%uint64(every) != 0 {
		return nil
	}
	id := t.seq.Add(1)
	now := time.Now()
	return &Trace{
		tracer: t,
		ID:     strconv.FormatUint(id, 10) + "-" + strconv.FormatInt(now.UnixNano(), 36),
		Op:     op,
		Start:  now,
	}
}

// Recent returns the retained finished traces, newest first.
func (t *Tracer) Recent() []TraceSnapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	traces := make([]*Trace, 0, len(t.ring))
	// Unroll the ring newest-first: entries before next are older.
	for i := 0; i < len(t.ring); i++ {
		idx := t.next - 1 - i
		if idx < 0 {
			idx += len(t.ring)
		}
		traces = append(traces, t.ring[idx])
	}
	t.mu.Unlock()
	out := make([]TraceSnapshot, 0, len(traces))
	for _, tr := range traces {
		out = append(out, tr.snapshot())
	}
	return out
}

// retain pushes a finished trace into the ring.
func (t *Tracer) retain(tr *Trace) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, tr)
		t.next = len(t.ring) % cap(t.ring)
		return
	}
	t.ring[t.next] = tr
	t.next = (t.next + 1) % cap(t.ring)
}

// SpanRecord is one finished stage of a trace, offset-based so the JSON
// rendering is self-contained.
type SpanRecord struct {
	Name     string        `json:"name"`
	Offset   time.Duration `json:"offset_ns"`
	Duration time.Duration `json:"duration_ns"`
}

// TraceSnapshot is the immutable JSON view of a finished (or in-flight)
// trace.
type TraceSnapshot struct {
	ID       string        `json:"id"`
	Op       string        `json:"op"`
	Corr     uint64        `json:"corr,omitempty"`
	Tenant   string        `json:"tenant,omitempty"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Spans    []SpanRecord  `json:"spans"`
}

// Trace follows one mediated call across the isolation boundary. Spans
// are stages of the call path (queue wait, permission check, kernel
// execution, wire I/O); they may overlap and are recorded in end order.
type Trace struct {
	tracer *Tracer
	ID     string
	Op     string
	Start  time.Time

	mu       sync.Mutex
	corr     uint64
	tenant   string
	spans    []SpanRecord
	duration time.Duration
	done     bool
}

// SetCorr stamps the audit correlation ID of the call this trace
// follows, linking the sampled trace to its audit events and — via the
// span layer — to the causal trace of the surrounding operation. Safe
// on a nil (unsampled) trace.
func (tr *Trace) SetCorr(corr uint64) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	tr.corr = corr
	tr.mu.Unlock()
}

// SetTenant stamps the tenant the traced call belongs to, so /traces can
// be filtered per tenant (?tenant=). Safe on a nil (unsampled) trace.
func (tr *Trace) SetTenant(tenant string) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	tr.tenant = tenant
	tr.mu.Unlock()
}

// StartSpan opens a named stage. Safe on a nil (unsampled) trace.
func (tr *Trace) StartSpan(name string) *Span {
	if tr == nil {
		return nil
	}
	return &Span{tr: tr, name: name, start: time.Now()}
}

// AddSpan records an externally timed stage — used when the start and end
// timestamps already exist for metric purposes, so tracing adds no clock
// reads of its own.
func (tr *Trace) AddSpan(name string, start time.Time, d time.Duration) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	tr.spans = append(tr.spans, SpanRecord{Name: name, Offset: start.Sub(tr.Start), Duration: d})
	tr.mu.Unlock()
}

// Finish seals the trace and retains it in the tracer's ring.
func (tr *Trace) Finish() {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	if tr.done {
		tr.mu.Unlock()
		return
	}
	tr.done = true
	tr.duration = time.Since(tr.Start)
	tr.mu.Unlock()
	tr.tracer.retain(tr)
}

// Snapshot renders the trace's immutable JSON view; callers use it to
// re-export a finished trace (e.g. into the span layer). Safe on nil.
func (tr *Trace) Snapshot() TraceSnapshot {
	if tr == nil {
		return TraceSnapshot{}
	}
	return tr.snapshot()
}

func (tr *Trace) snapshot() TraceSnapshot {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return TraceSnapshot{
		ID:       tr.ID,
		Op:       tr.Op,
		Corr:     tr.corr,
		Tenant:   tr.tenant,
		Start:    tr.Start,
		Duration: tr.duration,
		Spans:    append([]SpanRecord(nil), tr.spans...),
	}
}

// Span is one in-flight stage of a trace.
type Span struct {
	tr    *Trace
	name  string
	start time.Time
}

// End closes the span, recording its offset and duration on the trace.
// Safe on a nil span; idempotence is not required (each span ends once).
func (s *Span) End() {
	if s == nil || s.tr == nil {
		return
	}
	s.tr.AddSpan(s.name, s.start, time.Since(s.start))
	s.tr = nil
}
