// Package prof is SDNShield's continuous profiler: a background sampler
// capturing delta CPU/heap/mutex/block pprof profiles into a bounded
// on-disk ring (-prof-dir on the CLIs). Captures fire on a periodic
// cadence, on demand (/prof?capture=1), and whenever the diagnostic
// bundler records an automatic trigger — an anomaly flag, SLO breach,
// quota breach or quarantine — so the profile of the misbehaving window
// joins the evidence in the next /debug/bundle.
//
// Each capture is one subdirectory <dir>/<id>/ holding cpu.pprof (a
// windowed CPU profile), heap.pprof, allocs.pprof, mutex.pprof,
// block.pprof and meta.json carrying the capture's reason plus the Go
// runtime's numeric deltas over the CPU window (the "delta" part: what
// changed while the profile ran, not cumulative-since-boot noise). The
// ring keeps the newest MaxCaptures and deletes the oldest beyond that.
package prof

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"sdnshield/internal/obs"
	"sdnshield/internal/obs/recorder"
)

// Config tunes a Profiler.
type Config struct {
	// Dir is the on-disk capture ring. Required.
	Dir string
	// Interval is the periodic background capture cadence; 0 means the
	// default (60s), negative disables periodic captures (trigger- and
	// demand-driven only).
	Interval time.Duration
	// CPUWindow is how long each capture's CPU profile runs (and the
	// delta window for the runtime stats). Default 2s.
	CPUWindow time.Duration
	// MaxCaptures bounds the on-disk ring. Default 16.
	MaxCaptures int
	// MutexFraction is passed to runtime.SetMutexProfileFraction for the
	// profiler's lifetime (restored on Stop). Default 16; negative
	// leaves the process setting untouched.
	MutexFraction int
	// BlockRate is passed to runtime.SetBlockProfileRate in ns (restored
	// to off on Stop). Default 1ms; negative leaves it untouched.
	BlockRate int
}

func (c *Config) fill() error {
	if c.Dir == "" {
		return fmt.Errorf("prof: Config.Dir is required")
	}
	if c.Interval == 0 {
		c.Interval = 60 * time.Second
	}
	if c.CPUWindow <= 0 {
		c.CPUWindow = 2 * time.Second
	}
	if c.MaxCaptures <= 0 {
		c.MaxCaptures = 16
	}
	if c.MutexFraction == 0 {
		c.MutexFraction = 16
	}
	if c.BlockRate == 0 {
		c.BlockRate = int(time.Millisecond)
	}
	return nil
}

// RuntimeDelta is what changed in the Go runtime over the capture
// window.
type RuntimeDelta struct {
	WindowNs        int64  `json:"window_ns"`
	HeapAllocBytes  int64  `json:"heap_alloc_bytes_delta"`
	TotalAllocBytes uint64 `json:"alloc_bytes"`
	Mallocs         uint64 `json:"mallocs"`
	GCCycles        uint32 `json:"gc_cycles"`
	GCPauseNs       uint64 `json:"gc_pause_ns"`
	Goroutines      int    `json:"goroutines_delta"`
}

// Capture describes one completed profile capture.
type Capture struct {
	ID     string    `json:"id"`
	Time   time.Time `json:"time"`
	Reason string    `json:"reason"`
	App    string    `json:"app,omitempty"`
	Corr   uint64    `json:"corr,omitempty"`
	// Files maps profile file names to their sizes in bytes.
	Files map[string]int64 `json:"files"`
	Delta RuntimeDelta     `json:"delta"`
}

// Profiler owns the capture ring. One CPU profile can run per process;
// concurrent capture requests beyond the running one are dropped and
// counted (Skipped).
type Profiler struct {
	cfg Config

	mu     sync.Mutex
	recent []Capture // newest last
	seq    uint64

	capturing atomic.Bool
	skipped   atomic.Uint64
	errs      atomic.Uint64

	stopOnce  sync.Once
	stopCh    chan struct{}
	wg        sync.WaitGroup
	unhook    func()
	prevMutex int
}

// def is the process-wide profiler behind /prof and the bundle section.
var def atomic.Pointer[Profiler]

// Default returns the running process-wide profiler, nil when none.
func Default() *Profiler { return def.Load() }

// Start builds a profiler over cfg.Dir, wires it into the diagnostic
// bundler (bundle Profiles section + automatic trigger joins) and starts
// the periodic capture loop. The newest Start owns the process-wide
// /prof surface until its Stop.
func Start(cfg Config) (*Profiler, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("prof: %w", err)
	}
	p := &Profiler{cfg: cfg, stopCh: make(chan struct{})}
	if cfg.MutexFraction >= 0 {
		p.prevMutex = runtime.SetMutexProfileFraction(cfg.MutexFraction)
	}
	if cfg.BlockRate >= 0 {
		runtime.SetBlockProfileRate(cfg.BlockRate)
	}
	p.loadExisting()
	def.Store(p)
	recorder.SetProfilesProvider(func() interface{} { return p.Recent() })
	unhookCapture := recorder.OnCapture(func(trigger recorder.Trigger, app string, corr uint64, detail string) {
		if trigger == recorder.TriggerManual {
			return
		}
		// The bundler capture path must not stall on a CPU window.
		go func() {
			_, _ = p.capture(string(trigger), app, corr)
		}()
	})
	p.unhook = func() {
		unhookCapture()
		recorder.SetProfilesProvider(nil)
	}
	if cfg.Interval > 0 {
		p.wg.Add(1)
		go p.loop()
	}
	return p, nil
}

// Stop halts the periodic loop, detaches the bundler hooks and restores
// the mutex/block profile rates. Captured files stay on disk.
func (p *Profiler) Stop() {
	p.stopOnce.Do(func() {
		close(p.stopCh)
		p.wg.Wait()
		if p.unhook != nil {
			p.unhook()
		}
		if p.cfg.MutexFraction >= 0 {
			runtime.SetMutexProfileFraction(p.prevMutex)
		}
		if p.cfg.BlockRate >= 0 {
			runtime.SetBlockProfileRate(0)
		}
		def.CompareAndSwap(p, nil)
	})
}

func (p *Profiler) loop() {
	defer p.wg.Done()
	t := time.NewTicker(p.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-p.stopCh:
			return
		case <-t.C:
			_, _ = p.capture("periodic", "", 0)
		}
	}
}

// CaptureNow takes a capture on demand (the /prof?capture=1 path).
func (p *Profiler) CaptureNow(reason string) (*Capture, error) {
	if reason == "" {
		reason = "manual"
	}
	return p.capture(reason, "", 0)
}

// ErrBusy reports that a capture was skipped because one is running.
var ErrBusy = fmt.Errorf("prof: capture already in progress")

func (p *Profiler) capture(reason, app string, corr uint64) (*Capture, error) {
	if !p.capturing.CompareAndSwap(false, true) {
		p.skipped.Add(1)
		return nil, ErrBusy
	}
	defer p.capturing.Store(false)

	now := time.Now()
	p.mu.Lock()
	p.seq++
	id := "p" + strconv.FormatUint(p.seq, 10) + "-" + strconv.FormatInt(now.UnixNano(), 36)
	p.mu.Unlock()
	dir := filepath.Join(p.cfg.Dir, id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		p.errs.Add(1)
		return nil, err
	}

	c := Capture{ID: id, Time: now, Reason: reason, App: app, Corr: corr, Files: make(map[string]int64)}

	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	gBefore := runtime.NumGoroutine()

	cpuPath := filepath.Join(dir, "cpu.pprof")
	f, err := os.Create(cpuPath)
	if err != nil {
		p.errs.Add(1)
		return nil, err
	}
	start := time.Now()
	cpuErr := pprof.StartCPUProfile(f)
	if cpuErr == nil {
		// Sleep the window out unless Stop is racing us.
		select {
		case <-time.After(p.cfg.CPUWindow):
		case <-p.stopCh:
		}
		pprof.StopCPUProfile()
	}
	window := time.Since(start)
	_ = f.Close()
	if cpuErr != nil {
		// Another CPU profile (e.g. /debug/pprof/profile) is running;
		// keep the heap/mutex/block part of the capture.
		_ = os.Remove(cpuPath)
	} else if fi, err := os.Stat(cpuPath); err == nil {
		c.Files["cpu.pprof"] = fi.Size()
	}

	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	c.Delta = RuntimeDelta{
		WindowNs:        window.Nanoseconds(),
		HeapAllocBytes:  int64(after.HeapAlloc) - int64(before.HeapAlloc),
		TotalAllocBytes: after.TotalAlloc - before.TotalAlloc,
		Mallocs:         after.Mallocs - before.Mallocs,
		GCCycles:        after.NumGC - before.NumGC,
		GCPauseNs:       after.PauseTotalNs - before.PauseTotalNs,
		Goroutines:      runtime.NumGoroutine() - gBefore,
	}

	for _, name := range []string{"heap", "allocs", "mutex", "block"} {
		lp := pprof.Lookup(name)
		if lp == nil {
			continue
		}
		path := filepath.Join(dir, name+".pprof")
		pf, err := os.Create(path)
		if err != nil {
			p.errs.Add(1)
			continue
		}
		werr := lp.WriteTo(pf, 0)
		_ = pf.Close()
		if werr != nil {
			p.errs.Add(1)
			_ = os.Remove(path)
			continue
		}
		if fi, err := os.Stat(path); err == nil {
			c.Files[name+".pprof"] = fi.Size()
		}
	}

	if data, err := json.MarshalIndent(c, "", "  "); err == nil {
		_ = os.WriteFile(filepath.Join(dir, "meta.json"), append(data, '\n'), 0o644)
	}

	p.mu.Lock()
	p.recent = append(p.recent, c)
	evict := len(p.recent) - p.cfg.MaxCaptures
	var old []string
	if evict > 0 {
		for _, c := range p.recent[:evict] {
			old = append(old, c.ID)
		}
		p.recent = append([]Capture(nil), p.recent[evict:]...)
	}
	p.mu.Unlock()
	for _, oldID := range old {
		_ = os.RemoveAll(filepath.Join(p.cfg.Dir, oldID))
	}
	mCaptures.Inc()
	return &c, nil
}

// loadExisting rebuilds the capture index from meta.json files left by a
// previous run, so the ring bound holds across restarts.
func (p *Profiler) loadExisting() {
	entries, err := os.ReadDir(p.cfg.Dir)
	if err != nil {
		return
	}
	var caps []Capture
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(p.cfg.Dir, e.Name(), "meta.json"))
		if err != nil {
			continue
		}
		var c Capture
		if json.Unmarshal(data, &c) == nil && c.ID == e.Name() {
			caps = append(caps, c)
		}
	}
	sort.Slice(caps, func(i, j int) bool { return caps[i].Time.Before(caps[j].Time) })
	if len(caps) > p.cfg.MaxCaptures {
		for _, c := range caps[:len(caps)-p.cfg.MaxCaptures] {
			_ = os.RemoveAll(filepath.Join(p.cfg.Dir, c.ID))
		}
		caps = caps[len(caps)-p.cfg.MaxCaptures:]
	}
	p.mu.Lock()
	p.recent = caps
	p.mu.Unlock()
}

// Recent lists retained captures, newest first.
func (p *Profiler) Recent() []Capture {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Capture, 0, len(p.recent))
	for i := len(p.recent) - 1; i >= 0; i-- {
		out = append(out, p.recent[i])
	}
	return out
}

// Lookup returns a retained capture by ID.
func (p *Profiler) Lookup(id string) (Capture, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range p.recent {
		if c.ID == id {
			return c, true
		}
	}
	return Capture{}, false
}

// Dir returns the capture ring directory.
func (p *Profiler) Dir() string { return p.cfg.Dir }

// Skipped reports captures dropped because one was already running.
func (p *Profiler) Skipped() uint64 { return p.skipped.Load() }

// Errors reports file-level capture errors.
func (p *Profiler) Errors() uint64 { return p.errs.Load() }

var mCaptures = obs.Default().Counter("sdnshield_prof_captures_total",
	"Completed continuous-profiler captures.")
