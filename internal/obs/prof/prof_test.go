package prof

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// startTest runs a profiler over a temp ring with a short CPU window
// and no periodic loop, stopped with the test.
func startTest(t *testing.T, dir string, maxCaptures int) *Profiler {
	t.Helper()
	p, err := Start(Config{
		Dir:         dir,
		Interval:    -1, // demand/trigger captures only
		CPUWindow:   20 * time.Millisecond,
		MaxCaptures: maxCaptures,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Stop)
	return p
}

// TestProfilerCaptureRing: on-demand captures land as complete on-disk
// capture directories, the in-memory index tracks them newest first,
// and the ring evicts the oldest beyond MaxCaptures — index and disk
// both.
func TestProfilerCaptureRing(t *testing.T) {
	dir := t.TempDir()
	p := startTest(t, dir, 2)
	if Default() != p {
		t.Fatal("Start did not install the process-wide profiler")
	}

	var ids []string
	for i := 0; i < 3; i++ {
		c, err := p.CaptureNow("ring-test")
		if err != nil {
			t.Fatal(err)
		}
		if c.Reason != "ring-test" || len(c.Files) == 0 {
			t.Fatalf("capture %d: %+v", i, c)
		}
		if c.Delta.WindowNs <= 0 {
			t.Fatalf("capture %d has no delta window: %+v", i, c.Delta)
		}
		ids = append(ids, c.ID)
	}

	recent := p.Recent()
	if len(recent) != 2 {
		t.Fatalf("ring retained %d captures, want 2", len(recent))
	}
	// Newest first: the last two captures, in reverse order.
	if recent[0].ID != ids[2] || recent[1].ID != ids[1] {
		t.Fatalf("recent order = %s, %s; want %s, %s", recent[0].ID, recent[1].ID, ids[2], ids[1])
	}
	if _, ok := p.Lookup(ids[0]); ok {
		t.Fatal("evicted capture still in index")
	}
	if _, err := os.Stat(filepath.Join(dir, ids[0])); !os.IsNotExist(err) {
		t.Fatalf("evicted capture dir survives: %v", err)
	}

	// The newest capture's files are real and its meta.json round-trips.
	for name, size := range recent[0].Files {
		fi, err := os.Stat(filepath.Join(dir, recent[0].ID, name))
		if err != nil {
			t.Fatalf("capture file %s: %v", name, err)
		}
		if fi.Size() != size {
			t.Fatalf("capture file %s is %d bytes, index says %d", name, fi.Size(), size)
		}
	}
	raw, err := os.ReadFile(filepath.Join(dir, recent[0].ID, "meta.json"))
	if err != nil {
		t.Fatal(err)
	}
	var meta Capture
	if err := json.Unmarshal(raw, &meta); err != nil || meta.ID != recent[0].ID {
		t.Fatalf("meta.json: %v, %+v", err, meta)
	}

	p.Stop()
	if Default() != nil {
		t.Fatal("Stop left the process-wide profiler installed")
	}
}

// TestProfilerBusySkip: only one capture runs at a time; overlapping
// requests are refused with ErrBusy and counted, never queued.
func TestProfilerBusySkip(t *testing.T) {
	p, err := Start(Config{
		Dir:       t.TempDir(),
		Interval:  -1,
		CPUWindow: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()

	const burst = 8
	errs := make([]error, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = p.CaptureNow("overlap")
		}(i)
	}
	wg.Wait()

	var ok, busy int
	for _, err := range errs {
		switch {
		case err == nil:
			ok++
		case errors.Is(err, ErrBusy):
			busy++
		default:
			t.Fatal(err)
		}
	}
	if ok == 0 {
		t.Fatal("no capture from the burst succeeded")
	}
	if busy == 0 {
		t.Fatal("overlapping captures never refused with ErrBusy")
	}
	if got := p.Skipped(); got != uint64(busy) {
		t.Fatalf("Skipped() = %d, want %d", got, busy)
	}
}

// TestProfilerRestartLoadsExisting: a new profiler over an old ring
// directory rebuilds its index from the meta.json files and applies the
// (possibly smaller) ring bound to the leftovers.
func TestProfilerRestartLoadsExisting(t *testing.T) {
	dir := t.TempDir()
	p := startTest(t, dir, 4)
	var ids []string
	for i := 0; i < 2; i++ {
		c, err := p.CaptureNow("before-restart")
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, c.ID)
	}
	p.Stop()

	p2 := startTest(t, dir, 1)
	recent := p2.Recent()
	if len(recent) != 1 || recent[0].ID != ids[1] {
		t.Fatalf("restarted index = %+v, want just %s", recent, ids[1])
	}
	if _, err := os.Stat(filepath.Join(dir, ids[0])); !os.IsNotExist(err) {
		t.Fatalf("restart did not apply the ring bound on disk: %v", err)
	}
}
