// The profiler surface mounts onto every obs introspection endpoint via
// the extension-route registry:
//
//	/prof                     — capture index (enabled:false when no
//	                            profiler runs); ?capture=1 takes one now
//	/prof/<id>                — one capture's metadata
//	/prof/<id>/<file>.pprof   — download a profile file
package prof

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"

	"sdnshield/internal/obs"
)

func init() {
	obs.RegisterHandler("/prof", http.HandlerFunc(handleIndex))
	obs.RegisterHandler("/prof/", http.HandlerFunc(handleCapture))
}

type indexView struct {
	Enabled  bool      `json:"enabled"`
	Dir      string    `json:"dir,omitempty"`
	Skipped  uint64    `json:"skipped,omitempty"`
	Errors   uint64    `json:"errors,omitempty"`
	Captures []Capture `json:"captures"`
}

func handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/prof" {
		http.NotFound(w, r)
		return
	}
	p := Default()
	if p == nil {
		writeJSON(w, indexView{Enabled: false, Captures: []Capture{}})
		return
	}
	if r.URL.Query().Get("capture") == "1" {
		if c, err := p.CaptureNow("manual"); err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		} else {
			writeJSON(w, c)
			return
		}
	}
	writeJSON(w, indexView{
		Enabled:  true,
		Dir:      p.Dir(),
		Skipped:  p.Skipped(),
		Errors:   p.Errors(),
		Captures: p.Recent(),
	})
}

func handleCapture(w http.ResponseWriter, r *http.Request) {
	p := Default()
	if p == nil {
		http.Error(w, "no profiler running", http.StatusNotFound)
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/prof/")
	parts := strings.SplitN(rest, "/", 2)
	c, ok := p.Lookup(parts[0])
	if !ok {
		http.Error(w, "unknown capture", http.StatusNotFound)
		return
	}
	if len(parts) == 1 {
		writeJSON(w, c)
		return
	}
	file := parts[1]
	if _, known := c.Files[file]; !known || strings.Contains(file, "/") || strings.Contains(file, "..") {
		http.Error(w, "unknown profile file", http.StatusNotFound)
		return
	}
	path := filepath.Join(p.Dir(), c.ID, file)
	f, err := os.Open(path)
	if err != nil {
		http.Error(w, "profile file gone", http.StatusNotFound)
		return
	}
	defer f.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	http.ServeContent(w, r, file, c.Time, f)
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
