package obs

import (
	"sync"
	"testing"
	"time"
)

// fakeCounters is a settable good/total pair standing in for cumulative
// metrics, so Engine.Evaluate runs against a scripted traffic history.
type fakeCounters struct {
	mu          sync.Mutex
	good, total float64
}

func (f *fakeCounters) add(good, total float64) {
	f.mu.Lock()
	f.good += good
	f.total += total
	f.mu.Unlock()
}

func (f *fakeCounters) objective(name string, target float64) Objective {
	return Objective{
		Name: name, Target: target,
		Good:  func() float64 { f.mu.Lock(); defer f.mu.Unlock(); return f.good },
		Total: func() float64 { f.mu.Lock(); defer f.mu.Unlock(); return f.total },
	}
}

func newTestEngine(o Objective) (*Engine, time.Time) {
	return NewEngine(EngineConfig{
		Interval: time.Second, FastWindow: 10 * time.Second,
		SlowWindow: 60 * time.Second, BurnThreshold: 2,
	}, o), time.Unix(1_700_000_000, 0)
}

// TestEngineBreachAndRecoverEdges drives one objective idle → ok →
// breach → recovered with a deterministic clock and asserts each
// callback fires exactly once, on the transition.
func TestEngineBreachAndRecoverEdges(t *testing.T) {
	f := &fakeCounters{}
	e, now := newTestEngine(f.objective("install_p99", 0.9))
	var breaches, recoveries []string
	e.SetOnBreach(func(st ObjectiveStatus) { breaches = append(breaches, st.State) })
	e.SetOnRecover(func(st ObjectiveStatus) { recoveries = append(recoveries, st.State) })

	// No traffic yet: idle, full budget.
	st := e.Evaluate(now)[0]
	if st.State != StateIdle || st.BudgetRemaining != 1 {
		t.Fatalf("no-traffic status = %+v, want idle", st)
	}

	// Healthy traffic: all good for 20s.
	for i := 0; i < 20; i++ {
		now = now.Add(time.Second)
		f.add(100, 100)
		st = e.Evaluate(now)[0]
	}
	if st.State != StateOK || st.FastBurn != 0 {
		t.Fatalf("healthy status = %+v, want ok", st)
	}

	// Total failure: burn = (1-0)/(1-0.9) = 10 in both windows → breach,
	// callback exactly once even as the breach persists.
	for i := 0; i < 15; i++ {
		now = now.Add(time.Second)
		f.add(0, 100)
		st = e.Evaluate(now)[0]
	}
	if st.State != StateBreach {
		t.Fatalf("failing status = %+v, want breach", st)
	}
	if st.FastBurn < 2 || st.SlowBurn < 2 || st.BudgetRemaining >= 0 {
		t.Fatalf("breach burn rates = %+v", st)
	}
	if len(breaches) != 1 {
		t.Fatalf("breach callback fired %d times, want 1", len(breaches))
	}
	if len(recoveries) != 0 {
		t.Fatal("recovery fired while still breaching")
	}

	// Back to healthy: the fast window clears first (warn — only the
	// slow window still burns), which already leaves StateBreach, so the
	// recovery edge fires once.
	for i := 0; i < 15; i++ {
		now = now.Add(time.Second)
		f.add(100, 100)
		st = e.Evaluate(now)[0]
	}
	if st.State == StateBreach {
		t.Fatalf("recovered status = %+v, want not breach", st)
	}
	if len(recoveries) != 1 {
		t.Fatalf("recovery callback fired %d times, want 1", len(recoveries))
	}
	if len(breaches) != 1 {
		t.Fatalf("breach callback re-fired without a new breach: %d", len(breaches))
	}
}

// TestEngineWarnOnSingleWindow: a short failure spike past the fast
// window's threshold, against a long healthy history, warns rather than
// breaches — the multi-window guard against paging on noise.
func TestEngineWarnOnSingleWindow(t *testing.T) {
	f := &fakeCounters{}
	e, now := newTestEngine(f.objective("spike", 0.9))
	for i := 0; i < 55; i++ {
		now = now.Add(time.Second)
		f.add(100, 100)
		e.Evaluate(now)
	}
	var st ObjectiveStatus
	for i := 0; i < 3; i++ {
		now = now.Add(time.Second)
		f.add(0, 100)
		st = e.Evaluate(now)[0]
	}
	if st.State != StateWarn {
		t.Fatalf("spike status = %+v, want warn (fast window only)", st)
	}
	if st.FastBurn < 2 || st.SlowBurn >= 2 {
		t.Fatalf("spike burns = fast %.2f slow %.2f, want fast>=2 > slow", st.FastBurn, st.SlowBurn)
	}
}

func TestBurnRateClamp(t *testing.T) {
	if got := burnRate(1, 0.9); got != 0 {
		t.Fatalf("full compliance burn = %v, want 0", got)
	}
	if got := burnRate(0.8, 0.9); got != 2 {
		t.Fatalf("burn = %v, want 2", got)
	}
	// Target 1 leaves no budget: any miss is clamped, not +Inf, so the
	// status stays JSON-marshalable.
	if got := burnRate(0.999, 1); got != 1e9 {
		t.Fatalf("zero-budget burn = %v, want clamp 1e9", got)
	}
}

// TestLatencyObjectiveBuckets: the histogram-backed objective counts
// observations at or under the threshold across bucket boundaries.
func TestLatencyObjectiveBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("t_latency_seconds", "test", "op", "x")
	for i := 0; i < 9; i++ {
		h.Observe(10 * time.Microsecond)
	}
	h.Observe(3 * time.Second)
	o := LatencyObjective("lat", "p90 under 1.5ms", reg, "t_latency_seconds", 1500*time.Microsecond, 0.9)
	good, total := o.Good(), o.Total()
	if total != 10 {
		t.Fatalf("total = %v, want 10", total)
	}
	// The 3s outlier sits buckets above the threshold, so interpolation
	// adds nothing: exactly the nine fast observations count good.
	if good != 9 {
		t.Fatalf("good = %v, want 9", good)
	}
	// Unknown family: no traffic, not a panic.
	miss := LatencyObjective("none", "", reg, "t_absent_seconds", time.Second, 0.9)
	if g, tot := miss.Good(), miss.Total(); g != 0 || tot != 0 {
		t.Fatalf("absent family = (%v, %v), want zeros", g, tot)
	}
}
