// Package obs is the SDNShield telemetry subsystem: a dependency-free,
// sharded metrics registry (atomic counters, gauges and fixed-bucket
// latency histograms built for the per-call hot path), lightweight
// call-path tracing that follows one mediated call across the isolation
// boundary (app container → KSD deputy → permission check → kernel →
// wire), and an HTTP introspection endpoint serving Prometheus text
// exposition, JSON snapshots, per-app health and pprof.
//
// The paper's evaluation (§IX, Figures 5–8) is entirely about overhead on
// the mediated call path, so the instrumentation is designed to be cheap
// enough to leave on in production: increments are lock-free atomic adds
// striped across cache-line-padded shards (per-CPU-ish striping keyed off
// the caller's goroutine stack), histograms use fixed exponential bucket
// bounds compared as integer nanoseconds, and tracing is sampled with
// bounded in-memory retention. A single process-wide switch
// (SetEnabled(false)) turns every instrument into a near-free no-op; the
// `make bench` target compares the two modes to bound the overhead.
//
// obs deliberately imports nothing from the rest of the repo: every other
// layer (internal/controller, internal/permengine, internal/isolation,
// internal/faults) imports obs, never the reverse.
package obs

import (
	"runtime"
	"sync/atomic"
	"time"
	"unsafe"
)

// enabled gates every instrument. Default on: the whole point of the
// subsystem is that it is cheap enough to keep running.
var enabled atomic.Bool

func init() {
	enabled.Store(true)
	latEvery.Store(8)
}

// On reports whether instrumentation is live. Hot paths that need a
// timestamp should guard their time.Now() calls with it so the disabled
// mode really is free.
func On() bool { return enabled.Load() }

// SetEnabled flips the process-wide instrumentation switch and returns
// the previous state. Disabling does not reset any values; it only stops
// new observations.
func SetEnabled(v bool) bool { return enabled.Swap(v) }

// ---------------------------------------------------------------------------
// Sharding

// nShards is the number of stripes every sharded instrument carries,
// sized to the machine's parallelism (rounded up to a power of two,
// capped at 64) so concurrent writers on different Ps rarely collide on a
// cache line.
var (
	nShards   = shardCount()
	shardMask = uint64(nShards - 1)
)

func shardCount() int {
	n := runtime.GOMAXPROCS(0)
	p := 1
	for p < n {
		p <<= 1
	}
	if p > 64 {
		p = 64
	}
	return p
}

// pad64 is one cache-line-padded atomic counter cell. 64-byte padding
// keeps adjacent shards out of each other's cache lines (false sharing is
// exactly the contention the striping exists to avoid).
type pad64 struct {
	v atomic.Uint64
	_ [56]byte
}

// shardIndex picks the caller's stripe. Go exposes no goroutine or CPU
// id, so the hint is the address of a stack variable: distinct goroutines
// live on distinct stacks, and a fibonacci-style multiply spreads the
// high bits across the shard space. The same goroutine keeps hitting the
// same shard (good locality); different goroutines spread out.
func shardIndex() uint64 {
	var b byte
	h := uint64(uintptr(unsafe.Pointer(&b)))
	h ^= h >> 12
	h *= 0x9e3779b97f4a7c15
	return (h >> 56) & shardMask
}

// ---------------------------------------------------------------------------
// Timers

// Timer captures a start timestamp only when instrumentation is enabled,
// so disabled mode skips the clock reads entirely.
type Timer struct{ start time.Time }

// StartTimer begins a latency measurement; the zero Timer (returned when
// obs is disabled) makes every subsequent observation a no-op.
func StartTimer() Timer {
	if !On() {
		return Timer{}
	}
	return Timer{start: time.Now()}
}

// Active reports whether the timer is measuring.
func (t Timer) Active() bool { return !t.start.IsZero() }

// Elapsed returns the time since the timer started, or 0 for an inactive
// timer.
func (t Timer) Elapsed() time.Duration {
	if t.start.IsZero() {
		return 0
	}
	return time.Since(t.start)
}

// ---------------------------------------------------------------------------
// Latency sampling

// latEvery is the process-wide 1-in-N rate for hot-path latency
// measurements. Counters stay exact on every call; clock reads and
// histogram observations — the expensive part of instrumenting a
// sub-microsecond path — are taken for one call in N. The default of 8
// keeps histograms statistically dense while holding the per-call cost to
// a single atomic add for the unsampled majority.
var latEvery atomic.Int64

// SetLatencySampling sets the 1-in-N latency sampling rate; n <= 1
// measures every call (tests use this to make histogram counts exact).
// Returns the previous rate.
func SetLatencySampling(n int) int {
	return int(latEvery.Swap(int64(n)))
}

// LatencySampling returns the current 1-in-N latency sampling rate.
// Accounting built on sampled measurements scales them back to full
// rate with it.
func LatencySampling() int { return int(latEvery.Load()) }

// Sampler is a per-call-site tick counter deciding which calls get their
// latency measured. The zero value is ready to use.
type Sampler struct{ n atomic.Uint64 }

// Hit reports whether this call should be measured: false while
// instrumentation is disabled, one call in SetLatencySampling's N
// otherwise. Cost on the unsampled path is one atomic add.
func (s *Sampler) Hit() bool {
	if !enabled.Load() {
		return false
	}
	every := latEvery.Load()
	if every <= 1 {
		return true
	}
	return s.n.Add(1)%uint64(every) == 0
}
