package obs

import (
	"testing"
	"time"
)

// The micro-benchmarks below bound the cost of each instrument in both
// modes; `make bench` runs them next to the end-to-end mediated-call
// benchmark at the repo root.

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "h")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
	if c.Value() == 0 {
		b.Fatal("counter never incremented")
	}
}

func BenchmarkCounterIncDisabled(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "h")
	prev := SetEnabled(false)
	defer SetEnabled(prev)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "h")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(3 * time.Microsecond)
		}
	})
}

func BenchmarkHistogramObserveDisabled(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "h")
	prev := SetEnabled(false)
	defer SetEnabled(prev)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(3 * time.Microsecond)
		}
	})
}

func BenchmarkTimerObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "h")
	for i := 0; i < b.N; i++ {
		t := StartTimer()
		h.ObserveTimer(t)
	}
}

func BenchmarkTracerUnsampledStart(b *testing.B) {
	tr := NewTracer(64, 1<<30) // effectively never samples
	for i := 0; i < b.N; i++ {
		t := tr.Start("op")
		t.StartSpan("exec").End()
		t.Finish()
	}
}

// BenchmarkHistogramObserveTraced is the satellite guard for the
// exemplar hot path: a traced observation inside the exemplar refresh
// window must cost one atomic load and a time comparison over a plain
// Observe — no allocation, no clock read.
func BenchmarkHistogramObserveTraced(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "h")
	tr := &Trace{ID: "bench-1", Op: "op", Start: time.Now()}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.ObserveTraced(3*time.Microsecond, tr)
		}
	})
}
