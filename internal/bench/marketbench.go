// Market-throughput benchmark: installs/sec through the full
// provenance-and-reconciliation pipeline cold (every verdict computed)
// versus warm (shared verdict cache, every verdict a hit), plus the job
// spine's enqueue-to-done throughput and latency distribution. `make
// bench-market` runs the guard and writes BENCH_market.json.
package bench

import (
	"crypto/ed25519"
	"crypto/rand"
	"fmt"
	"sort"
	"sync"
	"time"

	"sdnshield/internal/core"
	"sdnshield/internal/isolation"
	"sdnshield/internal/jobs"
	"sdnshield/internal/market"
)

// marketBenchPolicy approves the bench manifest cleanly: no app-named
// asserts, so every generated app evaluates against the same bounds.
const marketBenchPolicy = `
LET Bound = { PERM read_statistics PERM visible_topology PERM insert_flow LIMITING IP_DST 10.1.0.0 MASK 255.255.0.0 }
ASSERT EITHER { PERM network_access } OR { PERM process_runtime }
`

const marketBenchManifest = "PERM read_statistics\nPERM insert_flow LIMITING IP_DST 10.1.0.0 MASK 255.255.0.0"

// nullRuntime satisfies market.Runtime with no enforcement backend, so
// the bench measures the market pipeline, not a fake switch fabric.
type nullRuntime struct{}

func (nullRuntime) SetPermissions(string, *core.Set)          {}
func (nullRuntime) AppHealth(string) (isolation.Health, bool) { return 0, false }

// MarketBenchResult is the BENCH_market.json document.
type MarketBenchResult struct {
	TrajectoryHeader
	Releases           int     `json:"releases"`
	ColdInstallsPerSec float64 `json:"cold_installs_per_sec"`
	WarmInstallsPerSec float64 `json:"warm_installs_per_sec"`
	WarmSpeedup        float64 `json:"warm_speedup"`
	CacheHits          uint64  `json:"cache_hits"`
	CacheMisses        uint64  `json:"cache_misses"`

	Jobs                  int     `json:"jobs"`
	QueueJobsPerSec       float64 `json:"queue_jobs_per_sec"`
	QueueLatencyP50Micros float64 `json:"queue_latency_p50_micros"`
	QueueLatencyP95Micros float64 `json:"queue_latency_p95_micros"`
	QueueLatencyP99Micros float64 `json:"queue_latency_p99_micros"`
}

// RunMarketBench measures the market install pipeline and the job
// spine. releases signed packages are vetted into a registry; the cold
// pass installs them all with an empty verdict cache, the warm pass
// repeats against the same (now-populated) shared cache with a fresh
// Market. jobsN jobs then flow through a durable WAL-backed queue in
// jobDir ("" for in-memory), each performing a warm-cache Evaluate —
// the recompute job's steady-state shape.
func RunMarketBench(releases, jobsN int, jobDir string) (*MarketBenchResult, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	reg := market.NewRegistry()
	if err := reg.TrustVendor("acme", pub); err != nil {
		return nil, err
	}
	digests := make([]market.Digest, 0, releases)
	for i := 0; i < releases; i++ {
		sr := market.Sign(market.Release{
			Name:     fmt.Sprintf("app%04d", i),
			Vendor:   "acme",
			Version:  "1.0.0",
			Manifest: marketBenchManifest,
		}, priv)
		d, err := reg.Submit(sr)
		if err != nil {
			return nil, fmt.Errorf("seed release %d: %w", i, err)
		}
		digests = append(digests, d)
	}

	cache := market.NewVerdictCache()
	res := &MarketBenchResult{TrajectoryHeader: NewTrajectoryHeader("market"), Releases: releases, Jobs: jobsN}

	installAll := func() (float64, error) {
		m, err := market.New(reg, nullRuntime{}, market.Config{
			PolicySrc: marketBenchPolicy, Cache: cache,
		})
		if err != nil {
			return 0, err
		}
		defer m.Close()
		start := time.Now()
		for _, d := range digests {
			r, err := m.Install(d)
			if err != nil {
				return 0, err
			}
			if r.Verdict != market.VerdictApproved {
				return 0, fmt.Errorf("bench release %s not approved: %s", d, r.Verdict)
			}
		}
		return float64(releases) / time.Since(start).Seconds(), nil
	}
	if res.ColdInstallsPerSec, err = installAll(); err != nil {
		return nil, fmt.Errorf("cold pass: %w", err)
	}
	if res.WarmInstallsPerSec, err = installAll(); err != nil {
		return nil, fmt.Errorf("warm pass: %w", err)
	}
	if res.ColdInstallsPerSec > 0 {
		res.WarmSpeedup = res.WarmInstallsPerSec / res.ColdInstallsPerSec
	}
	res.CacheHits, res.CacheMisses = cache.Stats()

	// Job spine: enqueue-to-done latency through the durable queue, with
	// the handler doing a warm-cache Evaluate per job.
	m, err := market.New(reg, nullRuntime{}, market.Config{
		PolicySrc: marketBenchPolicy, Cache: cache,
	})
	if err != nil {
		return nil, err
	}
	defer m.Close()
	jm, err := jobs.Open(jobs.Config{Dir: jobDir, MaxDepth: jobsN + 1})
	if err != nil {
		return nil, err
	}
	defer jm.Close()

	var (
		mu        sync.Mutex
		latencies []time.Duration
		wg        sync.WaitGroup
	)
	jm.Handle("bench.evaluate", 4, func(j jobs.Snapshot) ([]byte, error) {
		defer wg.Done()
		lat := time.Since(j.EnqueuedAt)
		if _, err := m.Evaluate(digests[int(j.ID)%len(digests)]); err != nil {
			return nil, err
		}
		mu.Lock()
		latencies = append(latencies, lat)
		mu.Unlock()
		return nil, nil
	})
	wg.Add(jobsN)
	start := time.Now()
	for i := 0; i < jobsN; i++ {
		if _, err := jm.Enqueue("bench.evaluate", []byte(`{}`)); err != nil {
			return nil, err
		}
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	res.QueueJobsPerSec = float64(jobsN) / elapsed

	sort.Slice(latencies, func(i, k int) bool { return latencies[i] < latencies[k] })
	pct := func(p float64) float64 {
		if len(latencies) == 0 {
			return 0
		}
		idx := int(p * float64(len(latencies)-1))
		return float64(latencies[idx]) / float64(time.Microsecond)
	}
	res.QueueLatencyP50Micros = pct(0.50)
	res.QueueLatencyP95Micros = pct(0.95)
	res.QueueLatencyP99Micros = pct(0.99)
	return res, nil
}
