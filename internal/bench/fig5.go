package bench

import (
	"fmt"
	"math/rand"
	"time"

	"sdnshield/internal/core"
	"sdnshield/internal/obs/audit"
	"sdnshield/internal/of"
	"sdnshield/internal/permengine"
)

// Fig5Row is one bar of Figure 5: single-core permission-check throughput
// for one API call type under one manifest complexity.
type Fig5Row struct {
	Complexity      string
	Tokens          int
	FiltersPerToken int
	API             string
	Checks          int
	NsPerCheck      float64
	ChecksPerSec    float64
	DenialRate      float64
}

// Fig5Complexities mirrors the paper's three manifests: small, medium and
// large carry 1, 5 and 15 permission tokens, each with 10–20 filters.
var Fig5Complexities = []struct {
	Name            string
	Tokens          int
	FiltersPerToken int
}{
	{"small", 1, 10},
	{"medium", 5, 15},
	{"large", 15, 20},
}

// fig5Tokens is the token population complexity manifests draw from; the
// first entries are the ones the trace exercises.
var fig5Tokens = []core.Token{
	core.TokenInsertFlow,
	core.TokenReadStatistics,
	core.TokenReadFlowTable,
	core.TokenDeleteFlow,
	core.TokenSendPktOut,
	core.TokenPktInEvent,
	core.TokenFlowEvent,
	core.TokenVisibleTopology,
	core.TokenHostNetwork,
	core.TokenFileSystem,
	core.TokenModifyFlow,
	core.TokenTopologyEvent,
	core.TokenErrorEvent,
	core.TokenReadPayload,
	core.TokenModifyTopology,
}

// allowedSubnets are the 10.x.0.0/16 ranges complexity filters admit;
// violating trace calls target 172.16.0.0/16.
const fig5AllowedSubnets = 8

// BuildComplexityManifest generates a synthetic permission set with the
// given number of tokens, each refined by filtersPerToken singleton
// filters: a disjunction of IP_DST subnet predicates conjoined with a
// priority cap and an ownership filter.
func BuildComplexityManifest(tokens, filtersPerToken int) *core.Set {
	return buildManifest(fig5Tokens, tokens, filtersPerToken)
}

// BuildComplexityManifestFor builds the manifest with the exercised API
// token granted first, so even the 1-token "small" manifest covers the
// API under test.
func BuildComplexityManifestFor(primary core.Token, tokens, filtersPerToken int) *core.Set {
	order := make([]core.Token, 0, len(fig5Tokens))
	order = append(order, primary)
	for _, t := range fig5Tokens {
		if t != primary {
			order = append(order, t)
		}
	}
	return buildManifest(order, tokens, filtersPerToken)
}

func buildManifest(order []core.Token, tokens, filtersPerToken int) *core.Set {
	if tokens > len(order) {
		tokens = len(order)
	}
	set := core.NewSet()
	for i := 0; i < tokens; i++ {
		nPreds := filtersPerToken - 2 // leave room for priority + owner
		if nPreds < 1 {
			nPreds = 1
		}
		var preds core.Expr
		for j := 0; j < nPreds; j++ {
			subnet := byte(1 + j%fig5AllowedSubnets)
			leaf := core.NewLeaf(core.NewPredFilter(of.FieldIPDst,
				uint64(of.IPv4FromOctets(10, subnet, 0, 0)), uint64(of.PrefixMask(16))))
			if preds == nil {
				preds = leaf
			} else {
				preds = &core.Or{L: preds, R: leaf}
			}
		}
		filter := &core.And{
			L: preds,
			R: &core.And{
				L: core.NewLeaf(core.NewMaxPriorityFilter(60000)),
				R: core.NewLeaf(core.NewOwnerFilter(false)),
			},
		}
		set.Grant(order[i], filter)
	}
	return set
}

// fig5Trace generates the app behaviour trace of §IX-B2: a sequence of
// flow insertions and statistics requests with the given fraction
// violating the permissions.
func fig5Trace(n int, violating float64, api core.Token, seed int64) []*core.Call {
	r := rand.New(rand.NewSource(seed))
	calls := make([]*core.Call, 0, n)
	for i := 0; i < n; i++ {
		var dst of.IPv4
		if r.Float64() < violating {
			dst = of.IPv4FromOctets(172, 16, byte(r.Intn(256)), byte(r.Intn(256)))
		} else {
			dst = of.IPv4FromOctets(10, byte(1+r.Intn(fig5AllowedSubnets)), byte(r.Intn(256)), byte(r.Intn(256)))
		}
		match := of.NewMatch().
			Set(of.FieldEthType, uint64(of.EthTypeIPv4)).
			Set(of.FieldIPDst, uint64(dst))
		switch api {
		case core.TokenInsertFlow:
			calls = append(calls, &core.Call{
				App: "bench", Token: core.TokenInsertFlow,
				DPID: 1, HasDPID: true,
				Match:    match,
				Actions:  []of.Action{of.Output(uint16(1 + r.Intn(4)))},
				Priority: uint16(r.Intn(50000)), HasPriority: true,
				HasFlowOwner: true, RuleCount: r.Intn(100), HasRuleCount: true,
			})
		case core.TokenReadStatistics:
			calls = append(calls, &core.Call{
				App: "bench", Token: core.TokenReadStatistics,
				DPID: 1, HasDPID: true,
				Match:      match,
				StatsLevel: of.StatsFlow,
			})
		}
	}
	return calls
}

// Fig5TraceForBench exposes the trace generator for the testing.B
// benchmarks.
func Fig5TraceForBench(n int, api core.Token) []*core.Call {
	return fig5Trace(n, 0.05, api, 42)
}

// RunFig5 measures single-goroutine permission-check throughput for the
// insert-flow and read-statistics APIs across the three manifest
// complexities, with 5% of trace calls violating the permissions.
func RunFig5(checksPerCell int) []Fig5Row {
	// The figure measures the raw check path (tens of ns per check); a
	// per-check journal emit would dominate it. The end-to-end audit cost
	// is budgeted on the µs-scale mediated call instead (bench-audit).
	wasOn := audit.On()
	audit.SetEnabled(false)
	defer audit.SetEnabled(wasOn)
	apis := []struct {
		name  string
		token core.Token
	}{
		{"insert_flow", core.TokenInsertFlow},
		{"read_statistics", core.TokenReadStatistics},
	}
	var rows []Fig5Row
	for _, cx := range Fig5Complexities {
		for _, api := range apis {
			set := BuildComplexityManifestFor(api.token, cx.Tokens, cx.FiltersPerToken)
			engine := permengine.New(nil)
			engine.SetPermissions("bench", set)
			trace := fig5Trace(checksPerCell, 0.05, api.token, 42)
			// Warm the caches and branch predictors so the first cell is
			// not penalized.
			for i := 0; i < len(trace)/10+1; i++ {
				//nolint:errcheck
				engine.Check(trace[i%len(trace)])
			}
			denied := 0
			start := time.Now()
			for _, call := range trace {
				if engine.Check(call) != nil {
					denied++
				}
			}
			elapsed := time.Since(start)
			rows = append(rows, Fig5Row{
				Complexity:      cx.Name,
				Tokens:          cx.Tokens,
				FiltersPerToken: cx.FiltersPerToken,
				API:             api.name,
				Checks:          len(trace),
				NsPerCheck:      float64(elapsed.Nanoseconds()) / float64(len(trace)),
				ChecksPerSec:    float64(len(trace)) / elapsed.Seconds(),
				DenialRate:      float64(denied) / float64(len(trace)),
			})
		}
	}
	return rows
}

// FormatFig5 renders the rows the way Figure 5 reports them.
func FormatFig5(rows []Fig5Row) string {
	t := NewTable("Figure 5: permission checking throughput (single core)",
		"complexity", "tokens", "filters/token", "api", "checks/sec", "ns/check", "denial rate")
	for _, r := range rows {
		t.AddRow(r.Complexity, r.Tokens, r.FiltersPerToken, r.API,
			fmt.Sprintf("%.0f", r.ChecksPerSec),
			fmt.Sprintf("%.1f", r.NsPerCheck),
			fmt.Sprintf("%.1f%%", r.DenialRate*100))
	}
	return t.String()
}
