package bench

import (
	"os"
	"path/filepath"
	"testing"
)

// TestHeatBenchTrajectory is the BENCH_heat.json half of `make
// bench-heat`: it drives the Fig5 trace through a fully instrumented
// engine (sampling 1) and writes the per-clause heat distribution plus
// check latency percentiles at the repo root. The ≤5% overhead guard on
// the mediated-call path is the root TestHeatOverheadBudget. Benchmarks
// on shared CI machines are noisy, so this only runs when asked for
// (SDNSHIELD_HEAT_BENCH=1); plain `go test ./...` skips it.
func TestHeatBenchTrajectory(t *testing.T) {
	if os.Getenv("SDNSHIELD_HEAT_BENCH") != "1" {
		t.Skip("set SDNSHIELD_HEAT_BENCH=1 to run the heat-profile trajectory")
	}
	checks := 200_000
	if testing.Short() {
		checks = 50_000
	}
	res, err := RunHeatBench(checks)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%d checks (%d allowed, %d denied), %.0f checks/s, p50=%.0fns p95=%.0fns p99=%.0fns, %d clauses",
		res.Checks, res.Allowed, res.Denied, res.ChecksPerSec,
		res.CheckP50Nanos, res.CheckP95Nanos, res.CheckP99Nanos, len(res.Clauses))

	// At sampling 1 every check is instrumented; losing samples would
	// mean the profile under-reports heat.
	if res.SampledChecks != uint64(checks) {
		t.Fatalf("sampled %d of %d checks at sampling 1", res.SampledChecks, checks)
	}
	// The Fig5 trace denies ~5% by design; both outcomes must register.
	if res.Allowed == 0 || res.Denied == 0 {
		t.Fatalf("degenerate trace: %d allowed, %d denied", res.Allowed, res.Denied)
	}
	var evals uint64
	for _, cl := range res.Clauses {
		evals += cl.Evals
		if cl.Evals != cl.Pass+cl.Fail {
			t.Fatalf("clause %s[%d]: evals=%d != pass+fail=%d",
				cl.Token, cl.Index, cl.Evals, cl.Pass+cl.Fail)
		}
	}
	if evals == 0 {
		t.Fatal("no clause evaluations recorded")
	}

	out := filepath.Join("..", "..", "BENCH_heat.json")
	if err := WriteTrajectory(out, res); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
