package bench

import (
	"os"
	"path/filepath"
	"testing"
)

// TestMarketBenchTrajectory is the `make bench-market` guard: it runs
// the cold/warm install passes and the job-spine measurement, writes
// BENCH_market.json at the repo root, and fails when the warm-cache
// install rate drops under 1000 installs/sec. Benchmarks on shared CI
// machines are noisy, so it only runs when asked for
// (SDNSHIELD_MARKET_BENCH=1); plain `go test ./...` skips it.
func TestMarketBenchTrajectory(t *testing.T) {
	if os.Getenv("SDNSHIELD_MARKET_BENCH") != "1" {
		t.Skip("set SDNSHIELD_MARKET_BENCH=1 to run the market throughput guard")
	}
	releases, jobsN := 400, 3000
	if testing.Short() {
		releases, jobsN = 100, 500
	}
	res, err := RunMarketBench(releases, jobsN, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("cold %.0f installs/s, warm %.0f installs/s (%.1fx), queue %.0f jobs/s p50=%.0fµs p95=%.0fµs p99=%.0fµs",
		res.ColdInstallsPerSec, res.WarmInstallsPerSec, res.WarmSpeedup,
		res.QueueJobsPerSec, res.QueueLatencyP50Micros, res.QueueLatencyP95Micros, res.QueueLatencyP99Micros)

	// Every warm install must be a cache hit; the cold pass must miss.
	if res.CacheMisses != uint64(releases) || res.CacheHits < uint64(releases) {
		t.Fatalf("cache hits=%d misses=%d, want %d misses and >= %d hits",
			res.CacheHits, res.CacheMisses, releases, releases)
	}
	if res.WarmInstallsPerSec < 1000 {
		t.Fatalf("warm-cache installs = %.0f/s, below the 1000/s floor", res.WarmInstallsPerSec)
	}

	out := filepath.Join("..", "..", "BENCH_market.json")
	if err := WriteTrajectory(out, res); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)

	// Span-layer companion: ingest throughput plus the per-stage install
	// latency breakdown recovered from collected spans.
	installsN := 200
	if testing.Short() {
		installsN = 50
	}
	tr, err := RunTraceBench(installsN)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("trace: %.1f spans/install, %.0f span ops/s, %d stages, %d dropped",
		tr.SpansPerInstall, tr.SpanOpsPerSec, len(tr.Stages), tr.DroppedSpans)
	if tr.SpansPerInstall < 3 {
		t.Fatalf("traced installs retained %.1f spans each, want >= 3 (root + verify + activate)", tr.SpansPerInstall)
	}
	for _, stage := range []string{"verify", "activate", "reconcile"} {
		if tr.Stages[stage].Count == 0 {
			t.Fatalf("stage %q missing from the trace breakdown: %+v", stage, tr.Stages)
		}
	}
	tout := filepath.Join("..", "..", "BENCH_trace.json")
	if err := WriteTrajectory(tout, tr); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", tout)
}
