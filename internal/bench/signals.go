package bench

import (
	"fmt"
	"os"
	"os/signal"
	"sync"
	"syscall"
)

// OnShutdown runs the given cleanups when the process receives SIGINT or
// SIGTERM, then exits with the conventional 128+signal status. The
// cleanups typically flush the audit JSONL sink and close the telemetry
// server so no events are lost on an interrupted run.
//
// The returned cancel function detaches the handler (for the normal exit
// path, where deferred cleanups run anyway); cleanups are guaranteed to
// run at most once across both paths.
func OnShutdown(cleanups ...func()) (cancel func()) {
	var once sync.Once
	runAll := func() {
		once.Do(func() {
			for _, fn := range cleanups {
				fn()
			}
		})
	}

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		select {
		case sig := <-ch:
			fmt.Fprintf(os.Stderr, "\nreceived %v; flushing telemetry and audit sinks\n", sig)
			runAll()
			code := 128 + 15 // SIGTERM
			if sig == syscall.SIGINT {
				code = 128 + 2
			}
			os.Exit(code)
		case <-done:
		}
	}()
	return func() {
		signal.Stop(ch)
		close(done)
		runAll()
	}
}
