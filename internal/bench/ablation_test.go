package bench

import (
	"strings"
	"testing"
)

func TestAblations(t *testing.T) {
	rows, err := RunAblations()
	if err != nil {
		t.Fatal(err)
	}
	studies := make(map[string]int)
	for _, r := range rows {
		studies[r.Study]++
		if r.Value <= 0 {
			t.Errorf("non-positive measurement: %+v", r)
		}
	}
	if studies["checking"] != 2 || studies["ksd-pool"] != 4 || studies["algorithm1"] != 3 {
		t.Errorf("study coverage = %v", studies)
	}
	out := FormatAblations(rows)
	for _, want := range []string{"compiled closure", "ksd-pool", "algorithm1"} {
		if !strings.Contains(out, want) {
			t.Errorf("format missing %q", want)
		}
	}
	t.Logf("\n%s", out)
}
