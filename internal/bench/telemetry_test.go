package bench

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"sdnshield/internal/obs"
	"sdnshield/internal/obs/span"
)

// TestStartSLOServesObjectives: the CLI-facing SLO wiring installs the
// default engine with the five shipped objectives, and /slo serves them.
func TestStartSLOServesObjectives(t *testing.T) {
	stop := StartSLO(true)
	defer stop()
	srv := httptest.NewServer(obs.NewHandler(obs.Default(), nil))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/slo")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got struct {
		Enabled    bool                  `json:"enabled"`
		Objectives []obs.ObjectiveStatus `json:"objectives"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if !got.Enabled {
		t.Fatal("/slo reports disabled while the engine is running")
	}
	names := make(map[string]bool)
	for _, o := range got.Objectives {
		names[o.Name] = true
	}
	for _, want := range []string{
		"market_install_p99", "job_queue_wait_p95", "mediated_call_p99",
		"verdict_cache_hit_ratio", "job_dead_letter_rate",
	} {
		if !names[want] {
			t.Errorf("/slo missing objective %q (have %v)", want, names)
		}
	}
	if len(got.Objectives) < 5 {
		t.Fatalf("/slo serves %d objectives, want >= 5", len(got.Objectives))
	}

	stop() // idempotent with the deferred call
	if obs.DefaultSLO() != nil {
		t.Fatal("stop left the default SLO engine installed")
	}
}

func TestStartSLODisabledIsNoop(t *testing.T) {
	stop := StartSLO(false)
	stop()
	if obs.DefaultSLO() != nil {
		t.Fatal("StartSLO(false) installed an engine")
	}
}

// TestStartTraceSink wires the default collector to a JSONL file the
// way the CLIs' -trace-file flag does, and checks spans reach disk.
func TestStartTraceSink(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	stop, err := StartTraceSink(path)
	if err != nil {
		t.Fatal(err)
	}
	sp := span.Root(7_331_001, "sink:e2e")
	sp.Annotate("exported")
	sp.End()
	stop()

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	found := false
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var rec span.Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("sink line not JSONL: %v", err)
		}
		if rec.TraceID == 7_331_001 && rec.Name == "sink:e2e" {
			found = true
		}
	}
	if !found {
		t.Fatal("root span never reached the trace sink file")
	}

	// "" means off, with a non-nil stop.
	noop, err := StartTraceSink("")
	if err != nil {
		t.Fatal(err)
	}
	noop()
}
