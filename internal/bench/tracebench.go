// Trace benchmark: span-layer ingest throughput plus the per-stage
// install latency breakdown recovered from collected spans — the same
// records /trace/<id> serves, so the benchmark doubles as a check that
// traced installs actually decompose into their pipeline stages. `make
// bench-market` writes the result to BENCH_trace.json.
package bench

import (
	"crypto/ed25519"
	"crypto/rand"
	"fmt"
	"sort"
	"strings"
	"time"

	"sdnshield/internal/market"
	"sdnshield/internal/obs/audit"
	"sdnshield/internal/obs/span"
)

// StageStat is one pipeline stage's latency distribution across the
// traced installs.
type StageStat struct {
	Count     int     `json:"count"`
	P50Micros float64 `json:"p50_micros"`
	P95Micros float64 `json:"p95_micros"`
}

// TraceBenchResult is the BENCH_trace.json document.
type TraceBenchResult struct {
	TrajectoryHeader
	Installs        int     `json:"installs"`
	SpansPerInstall float64 `json:"spans_per_install"`
	// SpanOpsPerSec is raw Root+End throughput into the bounded default
	// collector — the ceiling on how many spans the process can retain
	// per second, far above any real operation rate.
	SpanOpsPerSec float64              `json:"span_ops_per_sec"`
	Stages        map[string]StageStat `json:"stage_micros"`
	DroppedSpans  uint64               `json:"dropped_spans"`
}

// RunTraceBench drives installs traced releases through the market
// pipeline, then reconstructs the per-stage latency breakdown from the
// default span collector. The first install reconciles cold; the rest
// hit the shared verdict cache, so the stage map shows verify/activate
// on every install, parse/reconcile once, and cache_hit on the warm
// majority.
func RunTraceBench(installs int) (*TraceBenchResult, error) {
	prevSpan := span.SetEnabled(true)
	defer span.SetEnabled(prevSpan)

	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	reg := market.NewRegistry()
	if err := reg.TrustVendor("acme", pub); err != nil {
		return nil, err
	}
	digests := make([]market.Digest, 0, installs)
	for i := 0; i < installs; i++ {
		sr := market.Sign(market.Release{
			Name:     fmt.Sprintf("traced%04d", i),
			Vendor:   "acme",
			Version:  "1.0.0",
			Manifest: marketBenchManifest,
		}, priv)
		d, err := reg.Submit(sr)
		if err != nil {
			return nil, fmt.Errorf("seed release %d: %w", i, err)
		}
		digests = append(digests, d)
	}
	m, err := market.New(reg, nullRuntime{}, market.Config{
		PolicySrc: marketBenchPolicy, Cache: market.NewVerdictCache(),
	})
	if err != nil {
		return nil, err
	}
	defer m.Close()

	corrs := make([]uint64, 0, installs)
	for _, d := range digests {
		ot := market.OpTrace{Corr: audit.NextCorr()}
		r, err := m.InstallTraced(d, ot)
		if err != nil {
			return nil, err
		}
		if r.Verdict != market.VerdictApproved {
			return nil, fmt.Errorf("bench release %s not approved: %s", d, r.Verdict)
		}
		corrs = append(corrs, ot.Corr)
	}

	res := &TraceBenchResult{
		TrajectoryHeader: NewTrajectoryHeader("trace"),
		Installs:         installs,
		Stages:           make(map[string]StageStat),
	}
	col := span.DefaultCollector()
	durations := make(map[string][]time.Duration)
	totalSpans := 0
	for _, corr := range corrs {
		spans := col.Trace(corr)
		totalSpans += len(spans)
		for _, sp := range spans {
			if stage, ok := strings.CutPrefix(sp.Name, "stage:"); ok {
				durations[stage] = append(durations[stage], sp.Duration)
			}
		}
	}
	if installs > 0 {
		res.SpansPerInstall = float64(totalSpans) / float64(installs)
	}
	for stage, ds := range durations {
		sort.Slice(ds, func(i, k int) bool { return ds[i] < ds[k] })
		pct := func(p float64) float64 {
			return float64(ds[int(p*float64(len(ds)-1))]) / float64(time.Microsecond)
		}
		res.Stages[stage] = StageStat{Count: len(ds), P50Micros: pct(0.50), P95Micros: pct(0.95)}
	}

	// Raw ingest throughput: Root+End pairs rotated across enough trace
	// IDs that no single trace hits the per-trace span bound.
	const spanOps = 100_000
	base := uint64(1) << 40
	start := time.Now()
	for i := 0; i < spanOps; i++ {
		sp := span.Root(base+uint64(i%512), "bench:span")
		sp.End()
	}
	res.SpanOpsPerSec = float64(spanOps) / time.Since(start).Seconds()
	res.DroppedSpans = col.Dropped()
	return res, nil
}
