package bench

import (
	"fmt"
	"time"

	"sdnshield/internal/obs"
	"sdnshield/internal/obs/audit"
	"sdnshield/internal/obs/prof"
	"sdnshield/internal/obs/recorder"
	"sdnshield/internal/obs/span"
)

// StartTelemetry serves the obs introspection endpoint on addr ("" means
// off). It returns a stop function (never nil) and the bound address.
func StartTelemetry(addr string) (stop func(), bound string, err error) {
	if addr == "" {
		return func() {}, "", nil
	}
	srv, err := obs.Serve(addr, nil, nil)
	if err != nil {
		return nil, "", fmt.Errorf("telemetry endpoint: %w", err)
	}
	return func() { _ = srv.Close() }, srv.Addr(), nil
}

// StartAuditSink attaches a rotating JSONL file sink to the default audit
// journal ("" means off). The returned stop function (never nil) flushes
// pending events, detaches the sink and closes the file.
func StartAuditSink(path string) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	sink, err := audit.NewFileSink(path, 0)
	if err != nil {
		return nil, fmt.Errorf("audit sink: %w", err)
	}
	j := audit.Default()
	j.AttachSink(sink)
	return func() {
		j.Flush()
		j.DetachSink()
		_ = sink.Close()
	}, nil
}

// StartBundleDir points the default diagnostic bundler at dir ("" means
// off): every anomaly, quota-breach, quarantine or manual capture is
// written there as <id>.json. The returned stop function (never nil)
// detaches the directory so later captures stay in memory only.
func StartBundleDir(dir string) (stop func(), err error) {
	if dir == "" {
		return func() {}, nil
	}
	if err := recorder.SetBundleDir(dir); err != nil {
		return nil, err
	}
	return func() { _ = recorder.SetBundleDir("") }, nil
}

// StartTraceSink attaches a rotating JSONL file sink to the default span
// collector ("" means off), so every finished span lands on disk
// alongside the audit journal. The returned stop function (never nil)
// detaches the sink and closes the file.
func StartTraceSink(path string) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	sink, err := span.NewFileSink(path, 0)
	if err != nil {
		return nil, fmt.Errorf("trace sink: %w", err)
	}
	c := span.DefaultCollector()
	c.SetSink(sink)
	return func() {
		c.SetSink(nil)
		_ = sink.Close()
	}, nil
}

// StartProfiler runs the continuous profiler over dir ("" means off):
// periodic + diagnostic-trigger delta pprof captures land in a bounded
// on-disk ring surfaced at /prof and in every /debug/bundle. The
// returned stop function (never nil) halts the profiler.
func StartProfiler(dir string) (stop func(), err error) {
	if dir == "" {
		return func() {}, nil
	}
	p, err := prof.Start(prof.Config{Dir: dir})
	if err != nil {
		return nil, err
	}
	return p.Stop, nil
}

// StartSLO arms the default SLO engine over the five core objectives —
// install latency, job queue wait, mediated-call latency, verdict-cache
// hit ratio and job dead-letter rate — and starts its evaluation loop.
// A breach (both burn windows past threshold) emits a KindSLO audit
// event and captures a diagnostic bundle; recovery emits the matching
// audit event. The returned stop function (never nil) halts the loop
// and clears /slo.
func StartSLO(enable bool) (stop func()) {
	if !enable {
		return func() {}
	}
	reg := obs.Default()
	eng := obs.NewEngine(obs.EngineConfig{},
		obs.LatencyObjective("market_install_p99",
			"99% of install/upgrade pipelines finish within 250ms.",
			reg, "sdnshield_market_install_seconds", 250*time.Millisecond, 0.99),
		obs.LatencyObjective("job_queue_wait_p95",
			"95% of jobs start executing within 500ms of enqueue.",
			reg, "sdnshield_jobs_wait_seconds", 500*time.Millisecond, 0.95),
		obs.LatencyObjective("mediated_call_p99",
			"99% of mediated API calls finish within 1ms.",
			reg, "sdnshield_mediated_call_seconds", time.Millisecond, 0.99),
		obs.Objective{
			Name:        "verdict_cache_hit_ratio",
			Description: "At least 80% of reconciliations are served from the verdict cache.",
			Target:      0.80,
			Good:        func() float64 { return reg.TotalOf("sdnshield_market_verdict_cache_hits_total") },
			Total: func() float64 {
				return reg.TotalOf("sdnshield_market_verdict_cache_hits_total") +
					reg.TotalOf("sdnshield_market_verdict_cache_misses_total")
			},
		},
		obs.Objective{
			Name:        "job_dead_letter_rate",
			Description: "At least 99% of settled jobs complete instead of dead-lettering.",
			Target:      0.99,
			Good:        func() float64 { return reg.TotalOf("sdnshield_jobs_completed_total") },
			Total: func() float64 {
				return reg.TotalOf("sdnshield_jobs_completed_total") +
					reg.TotalOf("sdnshield_jobs_dead_total")
			},
		},
	)
	WireSLOBreach(eng)
	obs.SetDefaultSLO(eng)
	eng.Start()
	return func() {
		eng.Stop()
		if obs.DefaultSLO() == eng {
			obs.SetDefaultSLO(nil)
		}
	}
}

// WireSLOBreach installs the standard breach/recover callbacks on an SLO
// engine: a breach emits a KindSLO audit event and captures a diagnostic
// bundle (which in turn joins a profiler capture when one is running);
// recovery emits the matching audit event. StartSLO uses it for the
// default engine; tests wire purpose-built engines through the same
// path.
func WireSLOBreach(eng *obs.Engine) {
	eng.SetOnBreach(func(st obs.ObjectiveStatus) {
		corr := audit.NextCorr()
		detail := fmt.Sprintf("%s: fast burn %.2f, slow burn %.2f, compliance %.4f against target %.4f",
			st.Name, st.FastBurn, st.SlowBurn, st.Compliance, st.Target)
		if audit.On() {
			audit.Emit(audit.Event{
				Kind: audit.KindSLO, Verdict: audit.VerdictSLOBreach,
				Op: st.Name, Corr: corr, Detail: detail,
			})
		}
		recorder.Capture(recorder.TriggerSLO, "", corr, detail)
	})
	eng.SetOnRecover(func(st obs.ObjectiveStatus) {
		if audit.On() {
			audit.Emit(audit.Event{
				Kind: audit.KindSLO, Verdict: audit.VerdictSLORecover,
				Op: st.Name, Corr: audit.NextCorr(),
				Detail: fmt.Sprintf("%s: error budget out of fast burn (slow burn %.2f)", st.Name, st.SlowBurn),
			})
		}
	})
}

// TelemetrySummary renders the one-line metrics digest the CLIs print on
// exit, pulled from the default registry and the default audit journal.
func TelemetrySummary() string {
	reg := obs.Default()
	j := audit.Default()
	return fmt.Sprintf(
		"telemetry: checks=%.0f denied=%.0f mediated_calls=%.0f kernel_requests=%.0f retries=%.0f faults=%.0f app_panics=%.0f tx_rollbacks=%.0f audit_events=%d audit_drops=%d",
		reg.TotalOf("sdnshield_permengine_checks_total"),
		reg.TotalOfLabeled("sdnshield_permengine_checks_total", "decision", "deny"),
		reg.TotalOf("sdnshield_mediated_call_seconds"),
		reg.TotalOf("sdnshield_kernel_request_seconds"),
		reg.TotalOf("sdnshield_kernel_request_retries_total"),
		reg.TotalOf("sdnshield_faults_injected_total"),
		reg.TotalOf("sdnshield_app_panics_total"),
		reg.TotalOf("sdnshield_permengine_tx_rollbacks_total"),
		j.Emitted(),
		j.Drops(),
	)
}
