package bench

import (
	"fmt"

	"sdnshield/internal/obs"
)

// StartTelemetry serves the obs introspection endpoint on addr ("" means
// off). It returns a stop function (never nil) and the bound address.
func StartTelemetry(addr string) (stop func(), bound string, err error) {
	if addr == "" {
		return func() {}, "", nil
	}
	srv, err := obs.Serve(addr, nil, nil)
	if err != nil {
		return nil, "", fmt.Errorf("telemetry endpoint: %w", err)
	}
	return func() { _ = srv.Close() }, srv.Addr(), nil
}

// TelemetrySummary renders the one-line metrics digest the CLIs print on
// exit, pulled from the default registry.
func TelemetrySummary() string {
	reg := obs.Default()
	return fmt.Sprintf(
		"telemetry: checks=%.0f denied=%.0f mediated_calls=%.0f kernel_requests=%.0f retries=%.0f faults=%.0f app_panics=%.0f tx_rollbacks=%.0f",
		reg.TotalOf("sdnshield_permengine_checks_total"),
		reg.TotalOfLabeled("sdnshield_permengine_checks_total", "decision", "deny"),
		reg.TotalOf("sdnshield_mediated_call_seconds"),
		reg.TotalOf("sdnshield_kernel_request_seconds"),
		reg.TotalOf("sdnshield_kernel_request_retries_total"),
		reg.TotalOf("sdnshield_faults_injected_total"),
		reg.TotalOf("sdnshield_app_panics_total"),
		reg.TotalOf("sdnshield_permengine_tx_rollbacks_total"),
	)
}
