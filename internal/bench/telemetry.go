package bench

import (
	"fmt"

	"sdnshield/internal/obs"
	"sdnshield/internal/obs/audit"
	"sdnshield/internal/obs/recorder"
)

// StartTelemetry serves the obs introspection endpoint on addr ("" means
// off). It returns a stop function (never nil) and the bound address.
func StartTelemetry(addr string) (stop func(), bound string, err error) {
	if addr == "" {
		return func() {}, "", nil
	}
	srv, err := obs.Serve(addr, nil, nil)
	if err != nil {
		return nil, "", fmt.Errorf("telemetry endpoint: %w", err)
	}
	return func() { _ = srv.Close() }, srv.Addr(), nil
}

// StartAuditSink attaches a rotating JSONL file sink to the default audit
// journal ("" means off). The returned stop function (never nil) flushes
// pending events, detaches the sink and closes the file.
func StartAuditSink(path string) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	sink, err := audit.NewFileSink(path, 0)
	if err != nil {
		return nil, fmt.Errorf("audit sink: %w", err)
	}
	j := audit.Default()
	j.AttachSink(sink)
	return func() {
		j.Flush()
		j.DetachSink()
		_ = sink.Close()
	}, nil
}

// StartBundleDir points the default diagnostic bundler at dir ("" means
// off): every anomaly, quota-breach, quarantine or manual capture is
// written there as <id>.json. The returned stop function (never nil)
// detaches the directory so later captures stay in memory only.
func StartBundleDir(dir string) (stop func(), err error) {
	if dir == "" {
		return func() {}, nil
	}
	if err := recorder.SetBundleDir(dir); err != nil {
		return nil, err
	}
	return func() { _ = recorder.SetBundleDir("") }, nil
}

// TelemetrySummary renders the one-line metrics digest the CLIs print on
// exit, pulled from the default registry and the default audit journal.
func TelemetrySummary() string {
	reg := obs.Default()
	j := audit.Default()
	return fmt.Sprintf(
		"telemetry: checks=%.0f denied=%.0f mediated_calls=%.0f kernel_requests=%.0f retries=%.0f faults=%.0f app_panics=%.0f tx_rollbacks=%.0f audit_events=%d audit_drops=%d",
		reg.TotalOf("sdnshield_permengine_checks_total"),
		reg.TotalOfLabeled("sdnshield_permengine_checks_total", "decision", "deny"),
		reg.TotalOf("sdnshield_mediated_call_seconds"),
		reg.TotalOf("sdnshield_kernel_request_seconds"),
		reg.TotalOf("sdnshield_kernel_request_retries_total"),
		reg.TotalOf("sdnshield_faults_injected_total"),
		reg.TotalOf("sdnshield_app_panics_total"),
		reg.TotalOf("sdnshield_permengine_tx_rollbacks_total"),
		j.Emitted(),
		j.Drops(),
	)
}
