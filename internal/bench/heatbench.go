// Heat benchmark: the decision-heat profiler at sampling 1 (every check
// instrumented) over the Figure-5 medium manifest and trace mix, so
// BENCH_heat.json records where permission decisions actually spend
// their evaluations — per-clause evals/pass/fail/short-circuit counts
// with latency brackets — plus the check latency percentiles of the
// fully instrumented path. The ≤5% production-overhead guard (default
// 1-in-64 sampling) lives in the root TestHeatOverheadBudget; `make
// bench-heat` runs both.
package bench

import (
	"fmt"
	"sort"
	"time"

	"sdnshield/internal/core"
	"sdnshield/internal/permengine"
)

// HeatClauseRow is one clause's heat in the BENCH_heat.json document,
// flattened with its (app, token) key.
type HeatClauseRow struct {
	Token         string                  `json:"token"`
	Index         int                     `json:"index"`
	Expr          string                  `json:"expr"`
	Dimensions    []string                `json:"dimensions,omitempty"`
	Evals         uint64                  `json:"evals"`
	Pass          uint64                  `json:"pass"`
	Fail          uint64                  `json:"fail"`
	ShortCircuits uint64                  `json:"short_circuits"`
	Latency       permengine.HeatBrackets `json:"latency"`
}

// HeatBenchResult is the BENCH_heat.json document.
type HeatBenchResult struct {
	TrajectoryHeader
	Checks        int     `json:"checks"`
	Allowed       int     `json:"allowed"`
	Denied        int     `json:"denied"`
	ChecksPerSec  float64 `json:"checks_per_sec"`
	CheckP50Nanos float64 `json:"check_p50_nanos"`
	CheckP95Nanos float64 `json:"check_p95_nanos"`
	CheckP99Nanos float64 `json:"check_p99_nanos"`
	// SampledChecks is how many of the driven checks took the
	// instrumented route — equal to Checks at sampling 1.
	SampledChecks uint64          `json:"sampled_checks"`
	Clauses       []HeatClauseRow `json:"clauses"`
}

// RunHeatBench drives `checks` permission checks (the Fig5 medium
// manifest, 5% denials) through a heat-profiled engine at sampling 1
// and returns the per-clause heat distribution plus per-check latency
// percentiles.
func RunHeatBench(checks int) (*HeatBenchResult, error) {
	prevEnabled := permengine.SetHeatEnabled(true)
	prevEvery := permengine.SetHeatSampling(1)
	defer func() {
		permengine.SetHeatEnabled(prevEnabled)
		permengine.SetHeatSampling(prevEvery)
	}()

	// The Fig5 trace stamps App "bench" on every call.
	engine := permengine.New(nil)
	engine.SetPermissions("bench", bench5MediumManifest())
	trace := Fig5TraceForBench(4096, core.TokenInsertFlow)
	sampledBefore := engine.HeatSnapshot().SampledChecks

	res := &HeatBenchResult{TrajectoryHeader: NewTrajectoryHeader("heat"), Checks: checks}
	lat := make([]time.Duration, checks)
	start := time.Now()
	for i := 0; i < checks; i++ {
		s := time.Now()
		err := engine.Check(trace[i%len(trace)])
		lat[i] = time.Since(s)
		if err == nil {
			res.Allowed++
		} else {
			res.Denied++
		}
	}
	elapsed := time.Since(start).Seconds()
	if elapsed > 0 {
		res.ChecksPerSec = float64(checks) / elapsed
	}
	sort.Slice(lat, func(i, k int) bool { return lat[i] < lat[k] })
	pct := func(p float64) float64 {
		return float64(lat[int(p*float64(len(lat)-1))].Nanoseconds())
	}
	res.CheckP50Nanos = pct(0.50)
	res.CheckP95Nanos = pct(0.95)
	res.CheckP99Nanos = pct(0.99)

	snap := engine.HeatSnapshot()
	res.SampledChecks = snap.SampledChecks - sampledBefore
	for _, app := range snap.Apps {
		for _, tok := range app.Tokens {
			for _, cl := range tok.Clauses {
				if cl.Evals == 0 && cl.ShortCircuits == 0 {
					continue
				}
				res.Clauses = append(res.Clauses, HeatClauseRow{
					Token: tok.Token, Index: cl.Index, Expr: cl.Expr,
					Dimensions: cl.Dimensions,
					Evals:      cl.Evals, Pass: cl.Pass, Fail: cl.Fail,
					ShortCircuits: cl.ShortCircuits, Latency: cl.Latency,
				})
			}
		}
	}
	if len(res.Clauses) == 0 {
		return nil, fmt.Errorf("heat bench: no clause recorded any evaluations")
	}
	return res, nil
}

// bench5MediumManifest is the Fig5 medium-complexity manifest with the
// insert-flow token first, shared by the heat gate.
func bench5MediumManifest() *core.Set {
	return BuildComplexityManifestFor(core.TokenInsertFlow, 5, 15)
}
