package bench

import (
	"fmt"
	"time"

	"sdnshield/internal/apps"
	"sdnshield/internal/apps/malicious"
	"sdnshield/internal/controller"
	"sdnshield/internal/isolation"
	"sdnshield/internal/netsim"
	"sdnshield/internal/of"
	"sdnshield/internal/permlang"
	"sdnshield/internal/policylang"
	"sdnshield/internal/reconcile"
)

// AttackOutcome is one row of the Table I effectiveness experiment: how
// one attack class fared on one runtime.
type AttackOutcome struct {
	Class     int
	Attack    string
	Runtime   string // "baseline" or "sdnshield"
	Succeeded bool
	// DeniedSteps counts attack steps the permission engine blocked.
	DeniedSteps uint64
	// LaunchDenied reports the app could not even initialize.
	LaunchDenied bool
}

// attackerIP is where the Class 2 drop box listens.
var attackerIP = of.IPv4FromOctets(203, 0, 113, 9)

// securityPolicy is the administrator's template policy for third-party
// apps: the Scenario 1 boundary plus the attack-pattern mutual
// exclusions of §III/§V-A. Reconciliation cuts every attack app's
// requested permissions down to this envelope.
const securityPolicy = `
LET boundary = {
	PERM visible_topology
	PERM read_statistics LIMITING PORT_LEVEL
	PERM network_access LIMITING IP_DST 10.1.0.0 MASK 255.255.0.0
}
ASSERT EITHER { PERM network_access } OR { PERM send_packet_out }
ASSERT EITHER { PERM network_access } OR { PERM insert_flow }
ASSERT APP untrusted <= boundary
`

// attackEnv is one fresh network + controller + runtimes.
type attackEnv struct {
	built  *netsim.Built
	kernel *controller.Kernel
	shield *isolation.Shield
	mono   *isolation.Monolith
}

// FaultWrap decorates a switch's controller-side connection, typically
// with a faults.Wrap plan; nil leaves the connection clean.
type FaultWrap func(dpid of.DPID, ctrl of.Conn) of.Conn

func newAttackEnv(switches int, wrap FaultWrap) (*attackEnv, error) {
	b, err := netsim.Linear(switches)
	if err != nil {
		return nil, err
	}
	k := controller.New(b.Topo, nil)
	if err := b.Wire(func(conn of.Conn) error {
		_, err := k.AcceptSwitch(conn)
		return err
	}, wrap); err != nil {
		return nil, err
	}
	return &attackEnv{
		built:  b,
		kernel: k,
		shield: isolation.NewShield(k, isolation.Config{}),
		mono:   isolation.NewMonolith(k),
	}, nil
}

func (e *attackEnv) close() {
	e.shield.Stop()
	e.kernel.Stop()
	e.built.Net.Stop()
}

// launchSupport starts the forwarding substrate (and optionally the
// firewall) on the chosen runtime with their legitimate manifests.
func (e *attackEnv) launchSupport(shielded bool, withFirewall bool) error {
	l2 := apps.NewL2Switch("l2switch")
	var fw *apps.Firewall
	if withFirewall {
		fw = apps.NewFirewall("firewall", []uint16{22})
	}
	if shielded {
		e.shield.SetPermissions("l2switch", permlang.MustParse(l2.RequiredPermissions()).Set())
		if fw != nil {
			e.shield.SetPermissions("firewall", permlang.MustParse(fw.RequiredPermissions()).Set())
		}
		if fw != nil {
			if err := e.shield.Launch(fw); err != nil {
				return err
			}
		}
		return e.shield.Launch(l2)
	}
	if fw != nil {
		if err := e.mono.Launch(fw); err != nil {
			return err
		}
	}
	return e.mono.Launch(l2)
}

// launchAttacker reconciles the attacker's requested manifest against the
// security policy and launches it; on the baseline it launches with full
// privileges, as a monolithic controller would.
func (e *attackEnv) launchAttacker(shielded bool, app isolation.App, requested string) (launchErr error, err error) {
	if !shielded {
		return e.mono.Launch(app), nil
	}
	manifest, err := permlang.Parse(requested)
	if err != nil {
		return nil, err
	}
	policy, err := policylang.Parse(securityPolicy)
	if err != nil {
		return nil, err
	}
	engine := reconcile.New()
	engine.RegisterApp("untrusted", manifest.Set())
	res, err := engine.Reconcile("untrusted", manifest, policy)
	if err != nil {
		return nil, err
	}
	e.shield.SetPermissions(app.Name(), res.Reconciled)
	return e.shield.Launch(app), nil
}

// barrier synchronizes with every switch so previously issued flow-mods
// are applied before the data plane is probed.
func (e *attackEnv) barrier() {
	for _, sw := range e.kernel.Switches() {
		//nolint:errcheck // best-effort synchronization
		e.kernel.Barrier(sw.DPID)
	}
}

// warmUp primes MAC learning between the hosts.
func (e *attackEnv) warmUp() {
	for _, h := range e.built.Hosts {
		h.Send(of.NewARPRequest(h.MAC(), h.IP(), 0))
	}
	time.Sleep(30 * time.Millisecond)
	for _, h := range e.built.Hosts {
		h.ClearInbox()
	}
}

const attackWait = 300 * time.Millisecond

// RunEffectiveness reproduces the §IX-B1 experiment: the four
// proof-of-concept attacks on the baseline controller and on
// SDNShield-enabled one with reconciled Scenario 1 permissions.
func RunEffectiveness() ([]AttackOutcome, error) {
	return RunEffectivenessFaulty(nil)
}

// RunEffectivenessFaulty is RunEffectiveness with a fault-injection layer
// on every switch's control connection, so the attack outcomes can be
// validated under degraded transport too.
func RunEffectivenessFaulty(wrap FaultWrap) ([]AttackOutcome, error) {
	var out []AttackOutcome
	for _, shielded := range []bool{false, true} {
		runtime := "baseline"
		if shielded {
			runtime = "sdnshield"
		}
		for class := 1; class <= 4; class++ {
			outcome, err := runAttackClass(class, shielded, wrap)
			if err != nil {
				return nil, fmt.Errorf("class %d on %s: %w", class, runtime, err)
			}
			outcome.Runtime = runtime
			out = append(out, outcome)
		}
	}
	return out, nil
}

func runAttackClass(class int, shielded bool, wrap FaultWrap) (AttackOutcome, error) {
	switch class {
	case 1:
		return runRSTInjection(shielded, wrap)
	case 2:
		return runLeak(shielded, wrap)
	case 3:
		return runHijack(shielded, wrap)
	case 4:
		return runTunnel(shielded, wrap)
	default:
		return AttackOutcome{}, fmt.Errorf("unknown attack class %d", class)
	}
}

// runRSTInjection: Class 1 — sniff packet-ins, inject TCP RSTs into HTTP
// sessions. Success: a victim host receives a forged RST.
func runRSTInjection(shielded bool, wrap FaultWrap) (AttackOutcome, error) {
	outcome := AttackOutcome{Class: 1, Attack: "intrusion to data plane (TCP RST injection)"}
	env, err := newAttackEnv(2, wrap)
	if err != nil {
		return outcome, err
	}
	defer env.close()
	if err := env.launchSupport(shielded, false); err != nil {
		return outcome, err
	}
	attacker := malicious.NewRSTInjector("")
	launchErr, err := env.launchAttacker(shielded, attacker, attacker.RequestedPermissions())
	if err != nil {
		return outcome, err
	}
	outcome.LaunchDenied = launchErr != nil

	env.warmUp()
	h1, h2 := env.built.Hosts[0], env.built.Hosts[1]
	// An HTTP session between the victims.
	h1.SendTCP(h2, 45000, 80, of.TCPFlagSYN, []byte("GET /"))
	h2.SendTCP(h1, 80, 45000, of.TCPFlagACK, []byte("200 OK"))

	gotRST := func(h *netsim.Host) bool {
		_, ok := h.WaitFor(func(p *of.Packet) bool {
			return p.IPProto == of.IPProtoTCP && p.TCPFlags&of.TCPFlagRST != 0
		}, attackWait)
		return ok
	}
	outcome.Succeeded = gotRST(h1) || gotRST(h2)
	outcome.DeniedSteps = attacker.Denied()
	return outcome, nil
}

// runLeak: Class 2 — dump topology/config to a remote attacker. Success:
// the attacker's drop box received data.
func runLeak(shielded bool, wrap FaultWrap) (AttackOutcome, error) {
	outcome := AttackOutcome{Class: 2, Attack: "information leakage (topology exfiltration)"}
	env, err := newAttackEnv(3, wrap)
	if err != nil {
		return outcome, err
	}
	defer env.close()
	dropBox := env.kernel.HostOS().RegisterEndpoint(attackerIP, 80)
	if err := env.launchSupport(shielded, false); err != nil {
		return outcome, err
	}
	attacker := malicious.NewLeaker("", attackerIP, 80)
	launchErr, err := env.launchAttacker(shielded, attacker, attacker.RequestedPermissions())
	if err != nil {
		return outcome, err
	}
	outcome.LaunchDenied = launchErr != nil
	if launchErr == nil {
		//nolint:errcheck // denial is the expected shielded outcome
		attacker.Exfiltrate()
	}
	outcome.Succeeded = len(dropBox.Received()) > 0
	outcome.DeniedSteps = attacker.Denied()
	return outcome, nil
}

// runHijack: Class 3 — divert h1→h2 traffic through the attacker's host
// h3. Success: h3 observes a packet addressed to h2.
func runHijack(shielded bool, wrap FaultWrap) (AttackOutcome, error) {
	outcome := AttackOutcome{Class: 3, Attack: "rule manipulation (man-in-the-middle reroute)"}
	env, err := newAttackEnv(3, wrap)
	if err != nil {
		return outcome, err
	}
	defer env.close()
	if err := env.launchSupport(shielded, false); err != nil {
		return outcome, err
	}
	h1, h2, h3 := env.built.Hosts[0], env.built.Hosts[1], env.built.Hosts[2]
	attacker := malicious.NewRouteHijacker("", h1.IP(), h2.IP(), h3.IP())
	launchErr, err := env.launchAttacker(shielded, attacker, attacker.RequestedPermissions())
	if err != nil {
		return outcome, err
	}
	outcome.LaunchDenied = launchErr != nil

	env.warmUp()
	if launchErr == nil {
		//nolint:errcheck
		attacker.Hijack()
	}
	env.barrier()
	h3.ClearInbox()
	h1.SendTCP(h2, 46000, 80, of.TCPFlagSYN, []byte("secret"))
	_, diverted := h3.WaitFor(func(p *of.Packet) bool { return p.IPDst == h2.IP() }, attackWait)
	outcome.Succeeded = diverted
	outcome.DeniedSteps = attacker.Denied()
	return outcome, nil
}

// runTunnel: Class 4 — evade the firewall's port-22 ACL by dynamic-flow
// tunneling. Success: h2 receives port-22 traffic despite the ACL.
func runTunnel(shielded bool, wrap FaultWrap) (AttackOutcome, error) {
	outcome := AttackOutcome{Class: 4, Attack: "attacking other apps (dynamic-flow tunneling)"}
	env, err := newAttackEnv(2, wrap)
	if err != nil {
		return outcome, err
	}
	defer env.close()
	if err := env.launchSupport(shielded, true); err != nil {
		return outcome, err
	}
	h1, h2 := env.built.Hosts[0], env.built.Hosts[1]
	attacker := malicious.NewTunneler("", h1.IP(), h2.IP(), 22)
	launchErr, err := env.launchAttacker(shielded, attacker, attacker.RequestedPermissions())
	if err != nil {
		return outcome, err
	}
	outcome.LaunchDenied = launchErr != nil

	env.warmUp()
	env.barrier()
	// Sanity: the firewall does block port 22 without the tunnel.
	h1.SendTCP(h2, 47000, 22, of.TCPFlagSYN, nil)
	if _, leaked := h2.WaitFor(func(p *of.Packet) bool { return p.TPDst == 22 }, 100*time.Millisecond); leaked {
		return outcome, fmt.Errorf("firewall baseline broken: port 22 passed without tunnel")
	}
	if launchErr == nil {
		//nolint:errcheck
		attacker.Establish()
	}
	env.barrier()
	h2.ClearInbox()
	h1.SendTCP(h2, 47001, 22, of.TCPFlagSYN, []byte("ssh"))
	_, smuggled := h2.WaitFor(func(p *of.Packet) bool { return p.TPDst == 22 }, attackWait)
	outcome.Succeeded = smuggled
	outcome.DeniedSteps = attacker.Denied()
	return outcome, nil
}

// FormatTable1 renders the outcomes the way Table I reads: per attack
// class, whether each runtime stops it. The traffic-isolation and
// state-analysis columns are the paper's analytical values, reproduced
// for comparison.
func FormatTable1(outcomes []AttackOutcome) string {
	byClass := make(map[int]map[string]AttackOutcome)
	names := make(map[int]string)
	for _, o := range outcomes {
		if byClass[o.Class] == nil {
			byClass[o.Class] = make(map[string]AttackOutcome)
		}
		byClass[o.Class][o.Runtime] = o
		names[o.Class] = o.Attack
	}
	// Literature columns from Table I.
	trafficIsolation := map[int]string{1: "partial", 2: "no", 3: "partial", 4: "no"}
	stateAnalysis := map[int]string{1: "no", 2: "no", 3: "partial", 4: "partial"}

	mark := func(o AttackOutcome, ok bool) string {
		if !ok {
			return "?"
		}
		if o.Succeeded {
			return "vulnerable"
		}
		return "protected"
	}
	t := NewTable("Table I: attack protection coverage (measured: baseline & SDNShield; literature: others)",
		"class", "attack", "baseline", "traffic-isolation*", "state-analysis*", "sdnshield")
	for class := 1; class <= 4; class++ {
		base, okB := byClass[class]["baseline"]
		shield, okS := byClass[class]["sdnshield"]
		t.AddRow(class, names[class], mark(base, okB),
			trafficIsolation[class], stateAnalysis[class], mark(shield, okS))
	}
	return t.String()
}
