// Trajectory files: every bench gate writes a BENCH_<name>.json at the
// repo root so the performance history of the codebase is diffable
// across commits. This file is the shared schema glue — a common header
// (schema version, bench name, toolchain, commit) embedded in every
// result document, and the one writer all gates use.
package bench

import (
	"encoding/json"
	"os"
	"os/exec"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
)

// TrajectorySchemaVersion is bumped whenever the common header (not a
// bench's own payload) changes shape.
const TrajectorySchemaVersion = 2

// TrajectoryHeader is the common prefix of every BENCH_*.json document,
// embedded in each bench's result struct.
type TrajectoryHeader struct {
	SchemaVersion int    `json:"schema_version"`
	BenchName     string `json:"bench_name"`
	GoVersion     string `json:"go_version"`
	Commit        string `json:"commit"`
}

// NewTrajectoryHeader stamps a header for the named bench.
func NewTrajectoryHeader(name string) TrajectoryHeader {
	return TrajectoryHeader{
		SchemaVersion: TrajectorySchemaVersion,
		BenchName:     name,
		GoVersion:     runtime.Version(),
		Commit:        buildCommit(),
	}
}

var (
	commitOnce sync.Once
	commitVal  string
)

// buildCommit resolves the commit the binary was built from: the build
// info's vcs.revision when stamped (installed binaries), the working
// tree's HEAD when running under `go test` in a checkout, "unknown"
// otherwise.
func buildCommit() string {
	commitOnce.Do(func() {
		commitVal = "unknown"
		if bi, ok := debug.ReadBuildInfo(); ok {
			for _, s := range bi.Settings {
				if s.Key == "vcs.revision" && s.Value != "" {
					commitVal = s.Value
					return
				}
			}
		}
		if out, err := exec.Command("git", "rev-parse", "HEAD").Output(); err == nil {
			if rev := strings.TrimSpace(string(out)); rev != "" {
				commitVal = rev
			}
		}
	})
	return commitVal
}

// WriteTrajectory writes one bench result as an indented JSON document.
func WriteTrajectory(path string, v interface{}) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
