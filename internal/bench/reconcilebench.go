package bench

import (
	"fmt"
	"strings"
	"time"

	"sdnshield/internal/permlang"
	"sdnshield/internal/policylang"
	"sdnshield/internal/reconcile"
)

// ReconcileRow is one row of the reconciliation-cost experiment (§IX-A
// notes the engine never exceeded one second under pressure).
type ReconcileRow struct {
	Tokens          int
	FiltersPerToken int
	Constraints     int
	Duration        time.Duration
	Violations      int
}

// buildPressurePolicy generates a policy with the given number of
// boundary + exclusion constraints.
func buildPressurePolicy(constraints int) string {
	var sb strings.Builder
	sb.WriteString(`LET boundary = {
	PERM visible_topology
	PERM read_statistics LIMITING PORT_LEVEL
	PERM insert_flow LIMITING ACTION FORWARD AND OWN_FLOWS AND MAX_PRIORITY 30000
	PERM read_flow_table LIMITING OWN_FLOWS
	PERM network_access LIMITING IP_DST 10.1.0.0 MASK 255.255.0.0
}
`)
	for i := 0; i < constraints; i++ {
		switch i % 3 {
		case 0:
			sb.WriteString("ASSERT EITHER { PERM network_access } OR { PERM send_packet_out }\n")
		case 1:
			sb.WriteString("ASSERT EITHER { PERM host_network } OR { PERM insert_flow }\n")
		default:
			sb.WriteString("ASSERT APP pressured <= boundary\n")
		}
	}
	return sb.String()
}

// RunReconcileBench measures reconciliation wall time on the Fig. 5
// complexity manifests against increasingly constraint-heavy policies.
func RunReconcileBench() ([]ReconcileRow, error) {
	var out []ReconcileRow
	for _, cx := range Fig5Complexities {
		for _, constraints := range []int{3, 15, 60} {
			set := BuildComplexityManifest(cx.Tokens, cx.FiltersPerToken)
			manifest, err := permlang.Parse(set.String())
			if err != nil {
				return nil, fmt.Errorf("reparse complexity manifest: %w", err)
			}
			policy, err := policylang.Parse(buildPressurePolicy(constraints))
			if err != nil {
				return nil, err
			}
			engine := reconcile.New()
			start := time.Now()
			res, err := engine.Reconcile("pressured", manifest, policy)
			if err != nil {
				return nil, err
			}
			out = append(out, ReconcileRow{
				Tokens:          cx.Tokens,
				FiltersPerToken: cx.FiltersPerToken,
				Constraints:     constraints,
				Duration:        time.Since(start),
				Violations:      len(res.Violations),
			})
		}
	}
	return out, nil
}

// FormatReconcile renders the reconciliation-cost rows.
func FormatReconcile(rows []ReconcileRow) string {
	t := NewTable("Reconciliation engine cost (paper: < 1 s under pressure)",
		"tokens", "filters/token", "constraints", "violations", "duration")
	for _, r := range rows {
		t.AddRow(r.Tokens, r.FiltersPerToken, r.Constraints, r.Violations, r.Duration)
	}
	return t.String()
}
