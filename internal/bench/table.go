package bench

import (
	"fmt"
	"strings"
)

// Table is a simple aligned-column text table for experiment output.
type Table struct {
	title  string
	header []string
	rows   [][]string
}

// NewTable builds a table with a title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{title: title, header: header}
}

// AddRow appends one row, formatting each cell with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprintf("%v", c)
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	if t.title != "" {
		sb.WriteString(t.title + "\n")
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			if pad := widths[i] - len(cell); pad > 0 && i < len(cells)-1 {
				sb.WriteString(strings.Repeat(" ", pad))
			}
		}
		sb.WriteString("\n")
	}
	writeRow(t.header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total) + "\n")
	for _, row := range t.rows {
		writeRow(row)
	}
	return sb.String()
}
