package bench

import (
	"strings"
	"testing"
	"time"
)

func TestSummarize(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Error("empty sample should be zero")
	}
	one := Summarize([]time.Duration{5 * time.Millisecond})
	if one.Median != 5*time.Millisecond || one.P10 != one.P90 {
		t.Errorf("single sample summary = %+v", one)
	}
	samples := make([]time.Duration, 0, 100)
	for i := 1; i <= 100; i++ {
		samples = append(samples, time.Duration(i)*time.Microsecond)
	}
	s := Summarize(samples)
	if s.N != 100 || s.Min != time.Microsecond || s.Max != 100*time.Microsecond {
		t.Errorf("summary = %+v", s)
	}
	if s.Median < 50*time.Microsecond || s.Median > 51*time.Microsecond {
		t.Errorf("median = %v", s.Median)
	}
	if s.P10 < 10*time.Microsecond || s.P10 > 11*time.Microsecond {
		t.Errorf("p10 = %v", s.P10)
	}
	if s.P90 < 90*time.Microsecond || s.P90 > 91*time.Microsecond {
		t.Errorf("p90 = %v", s.P90)
	}
	if s.Mean != 50500*time.Nanosecond {
		t.Errorf("mean = %v", s.Mean)
	}
}

func TestTableFormatting(t *testing.T) {
	tbl := NewTable("Title", "a", "bee", "c")
	tbl.AddRow(1, "x", 3.5)
	tbl.AddRow("longer", "y", 1)
	out := tbl.String()
	for _, want := range []string{"Title", "a", "bee", "longer", "3.5"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestFig5SmallRun(t *testing.T) {
	rows := RunFig5(2000)
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6 (3 complexities x 2 APIs)", len(rows))
	}
	for _, r := range rows {
		if r.ChecksPerSec <= 0 {
			t.Errorf("non-positive throughput: %+v", r)
		}
		// ~5% of the trace violates; denial rate should be near that.
		if r.DenialRate < 0.01 || r.DenialRate > 0.15 {
			t.Errorf("denial rate off (%v): %+v", r.DenialRate, r)
		}
		// The paper reports sub-microsecond checks; allow generous slack
		// for CI noise but catch order-of-magnitude regressions.
		if r.NsPerCheck > 50000 {
			t.Errorf("check latency regressed: %+v", r)
		}
	}
	out := FormatFig5(rows)
	if !strings.Contains(out, "insert_flow") || !strings.Contains(out, "large") {
		t.Errorf("format missing fields:\n%s", out)
	}
}

func TestFig6SmallRun(t *testing.T) {
	rows, err := RunFig6([]int{2}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // 2 scenarios x 2 runtimes
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Latency.N != 10 || r.Latency.Median <= 0 {
			t.Errorf("bad latency summary: %+v", r)
		}
	}
	t.Logf("\n%s", FormatFig6(rows))
}

func TestFig7SmallRun(t *testing.T) {
	rows, err := RunFig7([]int{2}, 150*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.ResponsesPerSec <= 0 {
			t.Errorf("no throughput measured: %+v", r)
		}
	}
	t.Logf("\n%s", FormatFig7(rows))
}

func TestFig8SmallRun(t *testing.T) {
	rows, err := RunFig8([]int{1, 2}, []int{4}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 { // (2 app counts + 1 call count) x 2 runtimes
		t.Fatalf("rows = %d", len(rows))
	}
	t.Logf("\n%s", FormatFig8(rows))
}

func TestReconcileBenchUnderOneSecond(t *testing.T) {
	rows, err := RunReconcileBench()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// The paper's observation: never exceeds one second.
		if r.Duration > time.Second {
			t.Errorf("reconciliation exceeded 1s: %+v", r)
		}
		if r.Violations == 0 {
			t.Errorf("pressure manifest should violate the boundary: %+v", r)
		}
	}
	t.Logf("\n%s", FormatReconcile(rows))
}
