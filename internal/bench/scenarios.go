package bench

import (
	"fmt"
	"time"

	"sdnshield/internal/apps"
	"sdnshield/internal/cbench"
	"sdnshield/internal/controller"
	"sdnshield/internal/isolation"
	"sdnshield/internal/of"
	"sdnshield/internal/permlang"
	"sdnshield/internal/topology"
)

// scenarioEnv is the Fig. 6–8 measurement rig: a kernel fronted by
// CBench fake switches, with apps running on the selected runtime.
type scenarioEnv struct {
	kernel   *controller.Kernel
	shield   *isolation.Shield
	mono     *isolation.Monolith
	switches []*cbench.FakeSwitch
	shielded bool
}

func newScenarioEnv(nSwitches int, shielded bool, cfg isolation.Config) (*scenarioEnv, error) {
	k := controller.New(nil, nil)
	env := &scenarioEnv{
		kernel:   k,
		shielded: shielded,
		mono:     isolation.NewMonolith(k),
		shield:   isolation.NewShield(k, cfg),
	}
	for i := 1; i <= nSwitches; i++ {
		fs, err := cbench.Connect(k, of.DPID(i), 4)
		if err != nil {
			env.close()
			return nil, err
		}
		env.switches = append(env.switches, fs)
	}
	return env, nil
}

func (e *scenarioEnv) close() {
	e.shield.Stop()
	e.kernel.Stop()
	for _, fs := range e.switches {
		fs.Close()
	}
}

// launch starts an app on the selected runtime, granting its manifest
// under SDNShield.
func (e *scenarioEnv) launch(app isolation.App, manifest string) error {
	if !e.shielded {
		return e.mono.Launch(app)
	}
	e.shield.SetPermissions(app.Name(), permlang.MustParse(manifest).Set())
	return e.shield.Launch(app)
}

// runtimeName labels result rows.
func (e *scenarioEnv) runtimeName() string {
	if e.shielded {
		return "sdnshield"
	}
	return "baseline"
}

// setupL2 launches the learning switch and pre-learns the measurement
// destination on every fake switch so latency probes trigger flow-mods.
func (e *scenarioEnv) setupL2() (*apps.L2Switch, error) {
	l2 := apps.NewL2Switch("l2switch")
	if err := e.launch(l2, l2.RequiredPermissions()); err != nil {
		return nil, err
	}
	for _, fs := range e.switches {
		// A packet-in *from* host 2 teaches the app where host 2 lives.
		if err := fs.SendPacketIn(2, 99, 2); err != nil {
			return nil, err
		}
		// The controller floods the unknown destination; wait for it so
		// learning has definitely happened before measuring.
		if _, err := fs.WaitResponse(2 * time.Second); err != nil {
			return nil, fmt.Errorf("pre-learn on %v: %w", fs.DPID(), err)
		}
	}
	return l2, nil
}

// setupTE wires the ALTO + traffic-engineering scenario: a linear
// topology view over the fake switches, one host on each end, and the
// alto/te apps.
func (e *scenarioEnv) setupTE() (*apps.Alto, *apps.TrafficEngineer, error) {
	n := len(e.switches)
	if n < 2 {
		return nil, nil, fmt.Errorf("TE scenario needs >= 2 switches")
	}
	topo := e.kernel.Topology()
	for i := 1; i < n; i++ {
		err := topo.AddLink(topology.Link{
			A: of.DPID(i), APort: 3, B: of.DPID(i + 1), BPort: 2,
		})
		if err != nil {
			return nil, nil, err
		}
	}
	h1 := topology.Host{MAC: of.MAC{0x0e, 0, 0, 0, 0, 1}, IP: of.IPv4FromOctets(10, 9, 0, 1), Switch: 1, Port: 1}
	h2 := topology.Host{MAC: of.MAC{0x0e, 0, 0, 0, 0, 2}, IP: of.IPv4FromOctets(10, 9, 0, 2), Switch: of.DPID(n), Port: 1}
	e.kernel.LearnHost(h1)
	e.kernel.LearnHost(h2)

	alto := apps.NewAlto("alto")
	te := apps.NewTrafficEngineer("te", [][2]of.IPv4{{h1.IP, h2.IP}, {h2.IP, h1.IP}})
	// TE first so it sees ALTO's initial publication.
	if err := e.launch(te, te.RequiredPermissions()); err != nil {
		return nil, nil, err
	}
	if err := e.launch(alto, alto.RequiredPermissions()); err != nil {
		return nil, nil, err
	}
	// Wait until the initial reaction produced flow-mods end to end.
	deadline := time.Now().Add(2 * time.Second)
	for e.switches[n-1].FlowMods() == 0 {
		if time.Now().After(deadline) {
			return nil, nil, fmt.Errorf("TE warm-up: no flow-mods observed")
		}
		time.Sleep(time.Millisecond)
	}
	return alto, te, nil
}

// measureTERound times one event-chain reaction: port-status in, next
// flow-mod on the far switch out.
func (e *scenarioEnv) measureTERound(round int, timeout time.Duration) (time.Duration, error) {
	last := e.switches[len(e.switches)-1]
	mid := e.switches[len(e.switches)/2]
	last.Drain()
	start := time.Now()
	if err := mid.SendPortStatus(4, round%2 == 0); err != nil {
		return 0, err
	}
	if _, err := last.WaitFlowMod(timeout); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}
