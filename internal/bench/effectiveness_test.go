package bench

import (
	"strings"
	"testing"
)

func TestTable1AttackCoverage(t *testing.T) {
	// §IX-B1: the original controller is vulnerable to all four attacks;
	// the SDNShield-enabled controller is immune to all of them.
	outcomes, err := RunEffectiveness()
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != 8 {
		t.Fatalf("expected 8 outcomes, got %d", len(outcomes))
	}
	for _, o := range outcomes {
		switch o.Runtime {
		case "baseline":
			if !o.Succeeded {
				t.Errorf("class %d should succeed on the baseline controller: %+v", o.Class, o)
			}
		case "sdnshield":
			if o.Succeeded {
				t.Errorf("class %d must be blocked by SDNShield: %+v", o.Class, o)
			}
			if o.DeniedSteps == 0 && !o.LaunchDenied {
				t.Errorf("class %d: no denial recorded despite protection: %+v", o.Class, o)
			}
		default:
			t.Errorf("unknown runtime %q", o.Runtime)
		}
	}

	rendered := FormatTable1(outcomes)
	for _, want := range []string{"Table I", "vulnerable", "protected", "tunneling"} {
		if !strings.Contains(rendered, want) {
			t.Errorf("rendered table missing %q:\n%s", want, rendered)
		}
	}
	t.Logf("\n%s", rendered)
}

func TestReconciliationEffectiveness(t *testing.T) {
	// §IX-B1 second experiment: over-privileged manifests are cut down by
	// the attack-pattern security policies; here reflected by every
	// shielded attack app ending up without its dangerous tokens.
	outcomes, err := RunEffectiveness()
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range outcomes {
		if o.Runtime != "sdnshield" {
			continue
		}
		if o.Succeeded {
			t.Errorf("reconciled permissions failed to stop class %d", o.Class)
		}
	}
}
