package bench

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"sdnshield/internal/obs"
	"sdnshield/internal/obs/prof"
	"sdnshield/internal/obs/recorder"
)

// scriptedObjective is a settable good/total pair so the SLO engine can
// be driven to breach with a deterministic clock.
type scriptedObjective struct {
	mu          sync.Mutex
	good, total float64
}

func (s *scriptedObjective) add(good, total float64) {
	s.mu.Lock()
	s.good += good
	s.total += total
	s.mu.Unlock()
}

func (s *scriptedObjective) objective(name string, target float64) obs.Objective {
	return obs.Objective{
		Name: name, Target: target,
		Good:  func() float64 { s.mu.Lock(); defer s.mu.Unlock(); return s.good },
		Total: func() float64 { s.mu.Lock(); defer s.mu.Unlock(); return s.total },
	}
}

// TestSLOBreachJoinsProfilerAndBundle is the end-to-end trigger chain:
// an SLO error-budget breach captures a diagnostic bundle, the bundle
// capture fires the continuous profiler, and the resulting delta
// profiles appear in the *next* /debug/bundle's profiles section — so
// by the time an operator pulls the evidence, the profile of the
// misbehaving window is part of it.
func TestSLOBreachJoinsProfilerAndBundle(t *testing.T) {
	dir := t.TempDir()
	p, err := prof.Start(prof.Config{
		Dir:       dir,
		Interval:  -1, // no periodic noise; trigger-driven only
		CPUWindow: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()
	recorder.DefaultBundler().SetCooldown(0)
	defer recorder.DefaultBundler().SetCooldown(30 * time.Second)

	// A purpose-built engine wired through the same breach path as the
	// production StartSLO engine, evaluated with a scripted clock.
	script := &scriptedObjective{}
	eng := obs.NewEngine(obs.EngineConfig{
		Interval: time.Second, FastWindow: 10 * time.Second,
		SlowWindow: 60 * time.Second, BurnThreshold: 2,
	}, script.objective("e2e_latency_p99", 0.9))
	WireSLOBreach(eng)

	now := time.Unix(1_700_000_000, 0)
	for i := 0; i < 20; i++ { // healthy history
		now = now.Add(time.Second)
		script.add(100, 100)
		eng.Evaluate(now)
	}
	breached := false
	for i := 0; i < 15 && !breached; i++ { // total failure → fast burn
		now = now.Add(time.Second)
		script.add(0, 100)
		for _, st := range eng.Evaluate(now) {
			if st.State == obs.StateBreach {
				breached = true
			}
		}
	}
	if !breached {
		t.Fatal("scripted failure never breached the objective")
	}

	// The breach captured a bundle, whose trigger hook kicked off an
	// asynchronous profiler capture; wait for it to finish.
	var sloCap prof.Capture
	deadline := time.Now().Add(10 * time.Second)
	for sloCap.ID == "" {
		for _, c := range p.Recent() {
			if c.Reason == string(recorder.TriggerSLO) {
				sloCap = c
			}
		}
		if sloCap.ID == "" {
			if time.Now().After(deadline) {
				t.Fatalf("no %s profiler capture appeared; recent = %+v",
					recorder.TriggerSLO, p.Recent())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	if sloCap.Corr == 0 {
		t.Fatalf("SLO capture lost its audit correlation: %+v", sloCap)
	}
	if _, err := os.Stat(filepath.Join(dir, sloCap.ID, "meta.json")); err != nil {
		t.Fatalf("SLO capture not on disk: %v", err)
	}

	// The next bundle pull carries the profile evidence.
	bundle := recorder.Capture(recorder.TriggerManual, "", 0, "post-breach evidence pull")
	if bundle == nil {
		t.Fatal("manual bundle capture refused")
	}
	caps, ok := bundle.Profiles.([]prof.Capture)
	if !ok {
		t.Fatalf("bundle profiles section is %T, want []prof.Capture", bundle.Profiles)
	}
	found := false
	for _, c := range caps {
		if c.ID == sloCap.ID {
			found = true
		}
	}
	if !found {
		t.Fatalf("SLO capture %s missing from bundle profiles: %+v", sloCap.ID, caps)
	}
}
