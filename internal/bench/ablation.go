package bench

import (
	"fmt"
	"time"

	"sdnshield/internal/core"
	"sdnshield/internal/isolation"
	"sdnshield/internal/permengine"
)

// AblationRow is one measurement of an implementation-choice ablation.
type AblationRow struct {
	Study   string
	Variant string
	Metric  string
	Value   float64
}

// RunAblations measures the design choices DESIGN.md calls out:
//
//   - compiled vs interpreted permission checking (§VI-B "compiles the
//     permission manifest into runtime checking code");
//   - KSD pool sizing (§VI-A "multiple instances of KSDs can run in
//     parallel");
//   - Algorithm 1 normalization cost as filter expressions grow
//     (reconciliation's building block).
func RunAblations() ([]AblationRow, error) {
	var rows []AblationRow

	rows = append(rows, ablationCompiledVsInterpreted()...)

	ksd, err := ablationKSDWorkers()
	if err != nil {
		return nil, err
	}
	rows = append(rows, ksd...)

	rows = append(rows, ablationInclusionCost()...)
	return rows, nil
}

// ablationCompiledVsInterpreted compares the compiled checking closure
// against direct interpretation of the same filter expression tree, on
// identical calls (the pure filter-evaluation cost, without engine
// bookkeeping).
func ablationCompiledVsInterpreted() []AblationRow {
	set := BuildComplexityManifestFor(core.TokenInsertFlow, 1, 20)
	expr, _ := set.FilterFor(core.TokenInsertFlow)
	compiled := permengine.CompileFilter(expr)
	trace := fig5Trace(20000, 0.05, core.TokenInsertFlow, 7)

	for _, call := range trace[:2000] {
		compiled(call)
	}
	start := time.Now()
	for _, call := range trace {
		compiled(call)
	}
	compiledNs := float64(time.Since(start).Nanoseconds()) / float64(len(trace))

	for _, call := range trace[:2000] {
		expr.Eval(call)
	}
	start = time.Now()
	for _, call := range trace {
		expr.Eval(call)
	}
	interpretedNs := float64(time.Since(start).Nanoseconds()) / float64(len(trace))

	return []AblationRow{
		{Study: "checking", Variant: "compiled closure", Metric: "ns/check", Value: compiledNs},
		{Study: "checking", Variant: "interpreted tree", Metric: "ns/check", Value: interpretedNs},
	}
}

// ablationKSDWorkers sweeps the deputy pool size under the L2 latency
// probe.
func ablationKSDWorkers() ([]AblationRow, error) {
	var rows []AblationRow
	for _, workers := range []int{1, 2, 4, 8} {
		env, err := newScenarioEnv(2, true, isolation.Config{KSDWorkers: workers})
		if err != nil {
			return nil, err
		}
		if _, err := env.setupL2(); err != nil {
			env.close()
			return nil, err
		}
		samples := make([]time.Duration, 0, 50)
		for i := 0; i < 50; i++ {
			d, err := env.switches[i%len(env.switches)].MeasureLatency(1, 2, probeTimeout)
			if err != nil {
				env.close()
				return nil, err
			}
			samples = append(samples, d)
		}
		env.close()
		rows = append(rows, AblationRow{
			Study:   "ksd-pool",
			Variant: fmt.Sprintf("%d workers", workers),
			Metric:  "median-latency-ns",
			Value:   float64(Summarize(samples).Median.Nanoseconds()),
		})
	}
	return rows, nil
}

// ablationInclusionCost measures Algorithm 1 as the right operand's
// disjunction grows.
func ablationInclusionCost() []AblationRow {
	var rows []AblationRow
	boundary := BuildComplexityManifestFor(core.TokenInsertFlow, 1, 21)
	boundaryExpr, _ := boundary.FilterFor(core.TokenInsertFlow)
	for _, width := range []int{2, 8, 32} {
		request := BuildComplexityManifestFor(core.TokenInsertFlow, 1, width+2)
		requestExpr, _ := request.FilterFor(core.TokenInsertFlow)
		const iters = 2000
		start := time.Now()
		for i := 0; i < iters; i++ {
			//nolint:errcheck
			core.Includes(boundaryExpr, requestExpr)
		}
		rows = append(rows, AblationRow{
			Study:   "algorithm1",
			Variant: fmt.Sprintf("%d-filter request", width),
			Metric:  "ns/inclusion",
			Value:   float64(time.Since(start).Nanoseconds()) / iters,
		})
	}
	return rows
}

// FormatAblations renders the ablation rows.
func FormatAblations(rows []AblationRow) string {
	t := NewTable("Ablations: implementation choices",
		"study", "variant", "metric", "value")
	for _, r := range rows {
		t.AddRow(r.Study, r.Variant, r.Metric, fmt.Sprintf("%.1f", r.Value))
	}
	return t.String()
}
