// Tenant benchmark: one process hosting a thousand tenants, each with
// its own market and apps, under concurrent installs and mediated
// calls — across shard counts, against a single-tenant baseline. The
// claim under test is that tenancy is cheap: call p95 with a thousand
// neighbours sharded 16 ways stays within noise of the p95 a lone
// tenant sees. `make bench-tenants` writes BENCH_tenants.json.
package bench

import (
	"crypto/ed25519"
	"crypto/rand"
	"fmt"
	"sort"
	"sync"
	"time"

	"sdnshield/internal/market"
	"sdnshield/internal/obs"
	"sdnshield/internal/tenant"
)

// TenantShardRun is one shard-count configuration's measurement.
type TenantShardRun struct {
	Shards         int     `json:"shards"`
	Tenants        int     `json:"tenants"`
	Installs       int     `json:"installs"`
	InstallsPerSec float64 `json:"installs_per_sec"`
	Calls          int     `json:"calls"`
	CallsPerSec    float64 `json:"calls_per_sec"`
	CallP50Micros  float64 `json:"call_p50_micros"`
	CallP95Micros  float64 `json:"call_p95_micros"`
	Throttled      uint64  `json:"throttled"`
}

// TenantBenchResult is the BENCH_tenants.json document.
type TenantBenchResult struct {
	TrajectoryHeader
	AppsPerTenant  int `json:"apps_per_tenant"`
	CallsPerTenant int `json:"calls_per_tenant"`
	Workers        int `json:"load_workers"`
	// Baseline is a single tenant on the full 16-shard pool — the p95
	// the multi-tenant runs are held against.
	Baseline TenantShardRun   `json:"baseline_single_tenant"`
	Runs     []TenantShardRun `json:"runs"`
}

// tenantBenchWork is the simulated mediated-call body: enough cycles to
// look like permission-checked work, small enough that scheduling (not
// the payload) is what the benchmark weighs.
func tenantBenchWork() error {
	s := 0
	for i := 0; i < 400; i++ {
		s += i * i
	}
	if s < 0 {
		return fmt.Errorf("impossible")
	}
	return nil
}

// runTenantShardConfig hosts `tenants` tenants on a `shards`-shard
// manager, installs appsPerTenant apps into every tenant's market
// concurrently, then drives callsPerTenant mediated calls per tenant
// from `workers` concurrent load goroutines, recording per-call
// latency.
func runTenantShardConfig(tenants, appsPerTenant, callsPerTenant, shards, workers int) (*TenantShardRun, error) {
	mgr, err := tenant.NewManager(tenant.Config{
		Shards:        shards,
		ShardWorkers:  2,
		MaxResident:   tenants + 1,
		SweepInterval: -1,
		PolicySrc:     marketBenchPolicy,
		Registry:      obs.NewRegistry(),
	})
	if err != nil {
		return nil, err
	}
	defer mgr.Close()

	// One vendor, one package set, submitted into every tenant's private
	// registry.
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	packages := make([]*market.SignedRelease, appsPerTenant)
	for a := 0; a < appsPerTenant; a++ {
		packages[a] = market.Sign(market.Release{
			Name: fmt.Sprintf("app%02d", a), Vendor: "acme", Version: "1.0.0",
			Manifest: marketBenchManifest,
		}, priv)
	}

	ts := make([]*tenant.Tenant, tenants)
	for i := range ts {
		t, err := mgr.Create(fmt.Sprintf("tn%04d", i))
		if err != nil {
			return nil, err
		}
		if err := t.Market().Registry().TrustVendor("acme", pub); err != nil {
			return nil, err
		}
		ts[i] = t
	}

	run := &TenantShardRun{Shards: shards, Tenants: tenants}

	// Install phase: `workers` goroutines round-robin the tenants, each
	// submitting + installing the full package set into its tenants.
	installStart := time.Now()
	var wg sync.WaitGroup
	installErr := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < tenants; i += workers {
				t := ts[i]
				for _, sr := range packages {
					d, err := t.Market().Registry().Submit(sr)
					if err != nil {
						installErr <- err
						return
					}
					if _, err := t.Market().Install(d); err != nil {
						installErr <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-installErr:
		return nil, err
	default:
	}
	run.Installs = tenants * appsPerTenant
	run.InstallsPerSec = float64(run.Installs) / time.Since(installStart).Seconds()

	// Call phase: the total call budget is striped across the load
	// workers by call index and across tenants round-robin, so every
	// shard sees concurrent load whether the manager hosts one tenant or
	// a thousand.
	total := callsPerTenant * tenants
	latencies := make([][]time.Duration, workers)
	var throttled sync.Map
	callStart := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mine := make([]time.Duration, 0, total/workers+1)
			var refused uint64
			for c := w; c < total; c += workers {
				s := time.Now()
				if err := ts[c%tenants].Do("bench", tenantBenchWork); err != nil {
					refused++
					continue
				}
				mine = append(mine, time.Since(s))
			}
			latencies[w] = mine
			throttled.Store(w, refused)
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(callStart).Seconds()

	var all []time.Duration
	for _, l := range latencies {
		all = append(all, l...)
	}
	throttled.Range(func(_, v interface{}) bool {
		run.Throttled += v.(uint64)
		return true
	})
	run.Calls = len(all)
	if elapsed > 0 {
		run.CallsPerSec = float64(run.Calls) / elapsed
	}
	sort.Slice(all, func(i, k int) bool { return all[i] < all[k] })
	if len(all) > 0 {
		pct := func(p float64) float64 {
			return float64(all[int(p*float64(len(all)-1))]) / float64(time.Microsecond)
		}
		run.CallP50Micros = pct(0.50)
		run.CallP95Micros = pct(0.95)
	}
	return run, nil
}

// RunTenantBench measures the multi-tenant spine: a single-tenant
// baseline on the widest pool, then `tenants` tenants across each shard
// count. Tenants run without admission limits — the benchmark weighs
// scheduling (sharding + weighted fair queuing), not token buckets, so
// Throttled should stay 0 in every run.
func RunTenantBench(tenants, appsPerTenant, callsPerTenant int, shardCounts []int, workers int) (*TenantBenchResult, error) {
	res := &TenantBenchResult{
		TrajectoryHeader: NewTrajectoryHeader("tenants"),
		AppsPerTenant:    appsPerTenant,
		CallsPerTenant:   callsPerTenant,
		Workers:          workers,
	}
	// Baseline: one tenant, 16 shards, the same offered concurrency and
	// total call count as each multi-tenant run.
	base, err := runTenantShardConfig(1, appsPerTenant, callsPerTenant*tenants, 16, workers)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	res.Baseline = *base
	for _, shards := range shardCounts {
		run, err := runTenantShardConfig(tenants, appsPerTenant, callsPerTenant, shards, workers)
		if err != nil {
			return nil, fmt.Errorf("shards=%d: %w", shards, err)
		}
		res.Runs = append(res.Runs, *run)
	}
	return res, nil
}
