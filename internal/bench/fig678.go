package bench

import (
	"fmt"
	"sync"
	"time"

	"sdnshield/internal/controller"
	"sdnshield/internal/isolation"
)

// probeTimeout bounds one latency probe.
const probeTimeout = 5 * time.Second

// Fig6Row is one bar of Figure 6: end-to-end control-plane latency for
// one (scenario, switch count, runtime) cell.
type Fig6Row struct {
	Scenario string
	Switches int
	Runtime  string
	Latency  Summary
}

// RunFig6 measures end-to-end control-plane latency for the two §IX-A
// scenarios on both runtimes, repeating each probe rounds times (the
// paper uses 100).
func RunFig6(switchCounts []int, rounds int) ([]Fig6Row, error) {
	var out []Fig6Row
	for _, scenario := range []string{"l2switch", "alto-te"} {
		for _, n := range switchCounts {
			if scenario == "alto-te" && n < 2 {
				continue
			}
			for _, shielded := range []bool{false, true} {
				row, err := runFig6Cell(scenario, n, shielded, rounds)
				if err != nil {
					return nil, fmt.Errorf("fig6 %s n=%d shielded=%v: %w", scenario, n, shielded, err)
				}
				out = append(out, row)
			}
		}
	}
	return out, nil
}

func runFig6Cell(scenario string, nSwitches int, shielded bool, rounds int) (Fig6Row, error) {
	env, err := newScenarioEnv(nSwitches, shielded, isolation.Config{})
	if err != nil {
		return Fig6Row{}, err
	}
	defer env.close()
	row := Fig6Row{Scenario: scenario, Switches: nSwitches, Runtime: env.runtimeName()}

	samples := make([]time.Duration, 0, rounds)
	switch scenario {
	case "l2switch":
		if _, err := env.setupL2(); err != nil {
			return row, err
		}
		for i := 0; i < rounds; i++ {
			fs := env.switches[i%len(env.switches)]
			d, err := fs.MeasureLatency(1, 2, probeTimeout)
			if err != nil {
				return row, err
			}
			samples = append(samples, d)
		}
	case "alto-te":
		if _, _, err := env.setupTE(); err != nil {
			return row, err
		}
		for i := 0; i < rounds; i++ {
			d, err := env.measureTERound(i, probeTimeout)
			if err != nil {
				return row, err
			}
			samples = append(samples, d)
		}
	default:
		return row, fmt.Errorf("unknown scenario %q", scenario)
	}
	row.Latency = Summarize(samples)
	return row, nil
}

// FormatFig6 renders latency rows with median and 10/90 percentiles, the
// paper's bar + error-bar encoding.
func FormatFig6(rows []Fig6Row) string {
	t := NewTable("Figure 6: end-to-end control-plane latency (median [p10..p90])",
		"scenario", "switches", "runtime", "median", "p10", "p90", "rounds")
	for _, r := range rows {
		t.AddRow(r.Scenario, r.Switches, r.Runtime,
			r.Latency.Median, r.Latency.P10, r.Latency.P90, r.Latency.N)
	}
	return t.String()
}

// Fig7Row is one bar of Figure 7: sustained control-plane throughput in
// the L2 pressure test.
type Fig7Row struct {
	Switches        int
	Runtime         string
	ResponsesPerSec float64
	Sent            uint64
	Duration        time.Duration
}

// RunFig7 floods the controller with packet-ins from every switch for the
// given duration and counts flow-mod/packet-out responses, comparing the
// monolithic baseline with SDNShield (§IX-B3 pressure test).
func RunFig7(switchCounts []int, duration time.Duration) ([]Fig7Row, error) {
	var out []Fig7Row
	for _, n := range switchCounts {
		for _, shielded := range []bool{false, true} {
			row, err := runFig7Cell(n, shielded, duration)
			if err != nil {
				return nil, fmt.Errorf("fig7 n=%d shielded=%v: %w", n, shielded, err)
			}
			out = append(out, row)
		}
	}
	return out, nil
}

func runFig7Cell(nSwitches int, shielded bool, duration time.Duration) (Fig7Row, error) {
	env, err := newScenarioEnv(nSwitches, shielded, isolation.Config{
		KSDWorkers:   4,
		EventWorkers: 4,
	})
	if err != nil {
		return Fig7Row{}, err
	}
	defer env.close()
	row := Fig7Row{Switches: nSwitches, Runtime: env.runtimeName(), Duration: duration}
	if _, err := env.setupL2(); err != nil {
		return row, err
	}

	before := uint64(0)
	for _, fs := range env.switches {
		before += fs.Responses()
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var sent uint64
	var sentMu sync.Mutex
	for _, fs := range env.switches {
		fs := fs
		wg.Add(1)
		go func() {
			defer wg.Done()
			n := fs.Flood(stop)
			sentMu.Lock()
			sent += n
			sentMu.Unlock()
		}()
	}
	time.Sleep(duration)
	close(stop)
	wg.Wait()
	// Let in-flight responses land.
	time.Sleep(50 * time.Millisecond)

	after := uint64(0)
	for _, fs := range env.switches {
		after += fs.Responses()
	}
	row.Sent = sent
	row.ResponsesPerSec = float64(after-before) / duration.Seconds()
	return row, nil
}

// FormatFig7 renders throughput rows.
func FormatFig7(rows []Fig7Row) string {
	t := NewTable("Figure 7: control-plane throughput pressure test (L2 scenario)",
		"switches", "runtime", "responses/sec", "packet-ins sent", "duration")
	for _, r := range rows {
		t.AddRow(r.Switches, r.Runtime, fmt.Sprintf("%.0f", r.ResponsesPerSec), r.Sent, r.Duration)
	}
	return t.String()
}

// ---------------------------------------------------------------------------
// Figure 8: scalability

// Fig8Row is one point of Figure 8: latency under concurrent apps of a
// given complexity.
type Fig8Row struct {
	Apps          int
	CallsPerEvent int
	Runtime       string
	Latency       Summary
}

// observerApp is the synthetic concurrent app of the scalability
// experiment: on every packet-in it issues a configurable number of API
// calls (statistics queries), modeling app complexity as "API calls
// issued by the app".
type observerApp struct {
	name  string
	calls int
}

func (o *observerApp) Name() string { return o.name }

func (o *observerApp) Init(api isolation.API) error {
	return api.Subscribe(controller.EventPacketIn, func(ev controller.Event) {
		for i := 0; i < o.calls; i++ {
			//nolint:errcheck // load generation only
			api.SwitchStats(ev.PacketIn.DPID)
		}
	})
}

func (o *observerApp) manifest() string {
	return "PERM pkt_in_event\nPERM read_statistics\n"
}

// RunFig8 sweeps concurrent-app count (at fixed complexity) and app
// complexity (at fixed app count) on both runtimes, measuring the L2
// latency probe.
func RunFig8(appCounts, callCounts []int, rounds int) ([]Fig8Row, error) {
	var out []Fig8Row
	for _, apps := range appCounts {
		for _, shielded := range []bool{false, true} {
			row, err := runFig8Cell(apps, 1, shielded, rounds)
			if err != nil {
				return nil, fmt.Errorf("fig8 apps=%d: %w", apps, err)
			}
			out = append(out, row)
		}
	}
	for _, calls := range callCounts {
		if calls == 1 {
			continue // covered by the apps sweep with apps>=1
		}
		for _, shielded := range []bool{false, true} {
			row, err := runFig8Cell(1, calls, shielded, rounds)
			if err != nil {
				return nil, fmt.Errorf("fig8 calls=%d: %w", calls, err)
			}
			out = append(out, row)
		}
	}
	return out, nil
}

func runFig8Cell(nApps, callsPerEvent int, shielded bool, rounds int) (Fig8Row, error) {
	env, err := newScenarioEnv(2, shielded, isolation.Config{})
	if err != nil {
		return Fig8Row{}, err
	}
	defer env.close()
	row := Fig8Row{Apps: nApps, CallsPerEvent: callsPerEvent, Runtime: env.runtimeName()}

	if _, err := env.setupL2(); err != nil {
		return row, err
	}
	for i := 0; i < nApps; i++ {
		obs := &observerApp{name: fmt.Sprintf("observer-%d", i), calls: callsPerEvent}
		if err := env.launch(obs, obs.manifest()); err != nil {
			return row, err
		}
	}

	samples := make([]time.Duration, 0, rounds)
	for i := 0; i < rounds; i++ {
		fs := env.switches[i%len(env.switches)]
		d, err := fs.MeasureLatency(1, 2, probeTimeout)
		if err != nil {
			return row, err
		}
		samples = append(samples, d)
	}
	row.Latency = Summarize(samples)
	return row, nil
}

// FormatFig8 renders the scalability sweep, including the per-cell
// overhead of SDNShield over the baseline where both are present.
func FormatFig8(rows []Fig8Row) string {
	t := NewTable("Figure 8: latency vs concurrent apps and app complexity",
		"apps", "calls/event", "runtime", "median", "p90")
	for _, r := range rows {
		t.AddRow(r.Apps, r.CallsPerEvent, r.Runtime, r.Latency.Median, r.Latency.P90)
	}
	// Overhead summary.
	type key struct{ apps, calls int }
	base := make(map[key]time.Duration)
	for _, r := range rows {
		if r.Runtime == "baseline" {
			base[key{r.Apps, r.CallsPerEvent}] = r.Latency.Median
		}
	}
	o := NewTable("SDNShield latency overhead (median shield - median baseline)",
		"apps", "calls/event", "overhead")
	for _, r := range rows {
		if r.Runtime != "sdnshield" {
			continue
		}
		if b, ok := base[key{r.Apps, r.CallsPerEvent}]; ok {
			o.AddRow(r.Apps, r.CallsPerEvent, r.Latency.Median-b)
		}
	}
	return t.String() + "\n" + o.String()
}
