package bench

import (
	"os"
	"path/filepath"
	"testing"
)

// TestTenantBenchFlatness is the `make bench-tenants` guard: a thousand
// tenants (two hundred under -short) each install their apps and issue
// mediated calls concurrently, across shard counts {1, 4, 16}, and the
// 16-shard call p95 must stay within 10% (plus a fixed noise allowance)
// of the single-tenant baseline — tenancy must not tax the hot path.
// Writes BENCH_tenants.json at the repo root. Benchmarks on shared CI
// machines are noisy, so it only runs when asked for
// (SDNSHIELD_TENANT_BENCH=1); plain `go test ./...` skips it.
func TestTenantBenchFlatness(t *testing.T) {
	if os.Getenv("SDNSHIELD_TENANT_BENCH") != "1" {
		t.Skip("set SDNSHIELD_TENANT_BENCH=1 to run the multi-tenant flatness guard")
	}
	tenants, apps, calls := 1000, 10, 10
	if testing.Short() {
		tenants, apps, calls = 200, 5, 10
	}
	res, err := RunTenantBench(tenants, apps, calls, []int{1, 4, 16}, 32)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("baseline (1 tenant, 16 shards): p50=%.0fµs p95=%.0fµs %.0f calls/s",
		res.Baseline.CallP50Micros, res.Baseline.CallP95Micros, res.Baseline.CallsPerSec)
	var sixteen *TenantShardRun
	for i := range res.Runs {
		r := &res.Runs[i]
		t.Logf("shards=%2d: %d tenants, %.0f installs/s, p50=%.0fµs p95=%.0fµs %.0f calls/s throttled=%d",
			r.Shards, r.Tenants, r.InstallsPerSec, r.CallP50Micros, r.CallP95Micros, r.CallsPerSec, r.Throttled)
		if r.Throttled != 0 {
			t.Fatalf("shards=%d refused %d calls with no admission limits set", r.Shards, r.Throttled)
		}
		if r.Installs != tenants*apps {
			t.Fatalf("shards=%d completed %d installs, want %d", r.Shards, r.Installs, tenants*apps)
		}
		if r.Shards == 16 {
			sixteen = r
		}
	}
	if sixteen == nil {
		t.Fatal("no 16-shard run")
	}
	// The flatness guard: a thousand neighbours at full shard width cost
	// at most 10% p95 over a lone tenant, modulo a fixed allowance for
	// scheduler noise on small absolute latencies.
	limit := res.Baseline.CallP95Micros * 1.10
	if slack := res.Baseline.CallP95Micros + 250; slack > limit {
		limit = slack
	}
	if sixteen.CallP95Micros > limit {
		t.Fatalf("16-shard p95 %.0fµs exceeds baseline %.0fµs by more than 10%% (+noise floor)",
			sixteen.CallP95Micros, res.Baseline.CallP95Micros)
	}

	out := filepath.Join("..", "..", "BENCH_tenants.json")
	if err := WriteTrajectory(out, res); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
