// Package bench implements the SDNShield evaluation harness: one runner
// per table/figure of §IX, each reproducing the paper's workload and
// reporting the same rows or series. The runners are plain library code
// so the same experiments back the testing.B benchmarks, the sdnbench
// CLI and the integration tests.
package bench

import (
	"sort"
	"time"
)

// Summary condenses a latency sample the way the paper's error bars do:
// median with 10th/90th percentiles (Fig. 6).
type Summary struct {
	N      int
	Median time.Duration
	P10    time.Duration
	P90    time.Duration
	Mean   time.Duration
	Min    time.Duration
	Max    time.Duration
}

// Summarize computes the summary of a latency sample.
func Summarize(samples []time.Duration) Summary {
	if len(samples) == 0 {
		return Summary{}
	}
	sorted := make([]time.Duration, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, s := range sorted {
		sum += s
	}
	return Summary{
		N:      len(sorted),
		Median: percentile(sorted, 50),
		P10:    percentile(sorted, 10),
		P90:    percentile(sorted, 90),
		Mean:   sum / time.Duration(len(sorted)),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
	}
}

// percentile interpolates the p-th percentile of a sorted sample.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(rank)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := rank - float64(lo)
	return sorted[lo] + time.Duration(frac*float64(sorted[lo+1]-sorted[lo]))
}
