// Package netsim simulates an OpenFlow data plane: switches with real
// flow tables, inter-switch links, and hosts that send and receive
// packets. Each switch speaks the internal/of control protocol to a
// controller over an of.Conn, exactly the role Mininet + Open vSwitch
// play in the paper's testbed (§IX-A); CBench-style load generation drives
// the same path.
package netsim

import (
	"fmt"
	"sync"

	"sdnshield/internal/flowtable"
	"sdnshield/internal/of"
)

// maxHops bounds data-plane forwarding so flood loops in cyclic
// topologies terminate.
const maxHops = 64

// maxBuffers bounds per-switch packet-in buffers.
const maxBuffers = 4096

// peer describes what a switch port connects to.
type peer struct {
	isHost bool
	host   of.MAC
	sw     of.DPID
	port   uint16
}

// Network is a simulated network of switches, links and hosts.
type Network struct {
	mu       sync.RWMutex
	switches map[of.DPID]*Switch
	hosts    map[of.MAC]*Host
}

// New returns an empty network.
func New() *Network {
	return &Network{
		switches: make(map[of.DPID]*Switch),
		hosts:    make(map[of.MAC]*Host),
	}
}

// AddSwitch creates a switch with the given number of ports (numbered
// from 1) and a flow table of the given capacity (0 = unbounded).
func (n *Network) AddSwitch(dpid of.DPID, numPorts int, tableCapacity int) (*Switch, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.switches[dpid]; ok {
		return nil, fmt.Errorf("netsim: switch %v already exists", dpid)
	}
	sw := &Switch{
		dpid:    dpid,
		net:     n,
		table:   flowtable.New(tableCapacity),
		ports:   make(map[uint16]peer, numPorts),
		portsUp: make(map[uint16]bool, numPorts),
		stats:   make(map[uint16]*of.PortStatsEntry, numPorts),
		buffers: make(map[uint32]bufferedPacket),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	for p := uint16(1); p <= uint16(numPorts); p++ {
		sw.ports[p] = peer{}
		sw.portsUp[p] = true
		sw.stats[p] = &of.PortStatsEntry{Port: p}
	}
	n.switches[dpid] = sw
	return sw, nil
}

// Switch returns a switch by DPID.
func (n *Network) Switch(dpid of.DPID) (*Switch, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	sw, ok := n.switches[dpid]
	return sw, ok
}

// Switches returns all switches (unordered).
func (n *Network) Switches() []*Switch {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]*Switch, 0, len(n.switches))
	for _, sw := range n.switches {
		out = append(out, sw)
	}
	return out
}

// Link wires two switch ports together bidirectionally.
func (n *Network) Link(a of.DPID, aPort uint16, b of.DPID, bPort uint16) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	sa, ok := n.switches[a]
	if !ok {
		return fmt.Errorf("netsim: unknown switch %v", a)
	}
	sb, ok := n.switches[b]
	if !ok {
		return fmt.Errorf("netsim: unknown switch %v", b)
	}
	if err := sa.checkPortFree(aPort); err != nil {
		return err
	}
	if err := sb.checkPortFree(bPort); err != nil {
		return err
	}
	sa.ports[aPort] = peer{sw: b, port: bPort}
	sb.ports[bPort] = peer{sw: a, port: aPort}
	return nil
}

// AddHost attaches a host to a switch port.
func (n *Network) AddHost(mac of.MAC, ip of.IPv4, dpid of.DPID, port uint16) (*Host, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	sw, ok := n.switches[dpid]
	if !ok {
		return nil, fmt.Errorf("netsim: unknown switch %v", dpid)
	}
	if err := sw.checkPortFree(port); err != nil {
		return nil, err
	}
	if _, dup := n.hosts[mac]; dup {
		return nil, fmt.Errorf("netsim: host %v already exists", mac)
	}
	h := &Host{mac: mac, ip: ip, sw: dpid, port: port, net: n}
	h.arrived = sync.NewCond(&h.mu)
	sw.ports[port] = peer{isHost: true, host: mac}
	n.hosts[mac] = h
	return h, nil
}

// Host returns a host by MAC.
func (n *Network) Host(mac of.MAC) (*Host, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	h, ok := n.hosts[mac]
	return h, ok
}

// deliver hands a packet to whatever sits behind (dpid, outPort).
func (n *Network) deliver(from of.DPID, outPort uint16, pkt *of.Packet, hops int) {
	n.mu.RLock()
	sw, ok := n.switches[from]
	n.mu.RUnlock()
	if !ok {
		return
	}
	sw.mu.Lock()
	p, exists := sw.ports[outPort]
	up := sw.portsUp[outPort]
	if exists && up {
		st := sw.stats[outPort]
		st.TxPackets++
		st.TxBytes += uint64(packetSize(pkt))
	}
	sw.mu.Unlock()
	if !exists || !up {
		return
	}
	switch {
	case p.isHost:
		n.mu.RLock()
		h, ok := n.hosts[p.host]
		n.mu.RUnlock()
		if ok {
			h.receive(pkt)
		}
	case p.sw != 0 || p.port != 0:
		n.mu.RLock()
		next, ok := n.switches[p.sw]
		n.mu.RUnlock()
		if ok {
			next.processPacket(pkt, p.port, hops)
		}
	default:
		// Unwired port: packet vanishes.
	}
}

// packetSize approximates the frame's wire size for byte counters.
func packetSize(pkt *of.Packet) int {
	return 64 + len(pkt.Payload)
}

// Stop shuts every switch down and waits for their control loops.
func (n *Network) Stop() {
	for _, sw := range n.Switches() {
		sw.Stop()
	}
}
