package netsim

import (
	"sync"
	"time"

	"sdnshield/internal/of"
)

// Host is a simulated end host: it injects packets at its attachment
// point and records everything the data plane delivers to it.
type Host struct {
	mac  of.MAC
	ip   of.IPv4
	sw   of.DPID
	port uint16
	net  *Network

	mu      sync.Mutex
	inbox   []*of.Packet
	arrived *sync.Cond
}

// MAC returns the host's hardware address.
func (h *Host) MAC() of.MAC { return h.mac }

// IP returns the host's IPv4 address.
func (h *Host) IP() of.IPv4 { return h.ip }

// Attachment returns the host's switch and port.
func (h *Host) Attachment() (of.DPID, uint16) { return h.sw, h.port }

// Send injects a packet into the network at the host's port.
func (h *Host) Send(pkt *of.Packet) {
	h.net.mu.RLock()
	sw, ok := h.net.switches[h.sw]
	h.net.mu.RUnlock()
	if !ok {
		return
	}
	sw.processPacket(pkt.Clone(), h.port, maxHops)
}

// SendTCP is a convenience for sending one TCP segment to a destination
// host identified by MAC/IP.
func (h *Host) SendTCP(dst *Host, srcPort, dstPort uint16, flags uint8, payload []byte) {
	pkt := of.NewTCPPacket(h.mac, dst.mac, h.ip, dst.ip, srcPort, dstPort, flags)
	pkt.Payload = payload
	h.Send(pkt)
}

func (h *Host) receive(pkt *of.Packet) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.inbox = append(h.inbox, pkt.Clone())
	h.arrived.Broadcast()
}

// Received snapshots the host's inbox.
func (h *Host) Received() []*of.Packet {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]*of.Packet, len(h.inbox))
	copy(out, h.inbox)
	return out
}

// ClearInbox empties the inbox.
func (h *Host) ClearInbox() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.inbox = nil
}

// WaitFor blocks until a packet satisfying pred arrives (scanning packets
// already in the inbox first) or the timeout elapses.
func (h *Host) WaitFor(pred func(*of.Packet) bool, timeout time.Duration) (*of.Packet, bool) {
	deadline := time.Now().Add(timeout)
	h.mu.Lock()
	defer h.mu.Unlock()
	scanned := 0
	for {
		for ; scanned < len(h.inbox); scanned++ {
			if pred(h.inbox[scanned]) {
				return h.inbox[scanned], true
			}
		}
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return nil, false
		}
		// Cond has no timed wait; poll with a short sleep while releasing
		// the lock so receive() can make progress.
		h.mu.Unlock()
		time.Sleep(minDuration(remaining, time.Millisecond))
		h.mu.Lock()
	}
}

func minDuration(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}
