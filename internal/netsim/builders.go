package netsim

import (
	"fmt"
	"sort"

	"sdnshield/internal/of"
	"sdnshield/internal/topology"
)

// Built describes a constructed test network: the simulator plus the
// ready-made topology graph a controller can be seeded with (standing in
// for LLDP discovery).
type Built struct {
	Net   *Network
	Topo  *topology.Topology
	Hosts []*Host
}

// Wire connects every switch in the network to a controller: each switch
// gets an in-memory pipe, starts its control loop on one end, and hands
// the other end to accept (typically a kernel's AcceptSwitch). wrap, when
// non-nil, decorates the controller-side connection first — the hook
// fault-injection harnesses (internal/faults) plug into. Switches are
// wired in ascending DPID order so fault schedules keyed on message
// indices are reproducible.
func (b *Built) Wire(accept func(of.Conn) error, wrap func(of.DPID, of.Conn) of.Conn) error {
	switches := b.Net.Switches()
	sort.Slice(switches, func(i, j int) bool { return switches[i].DPID() < switches[j].DPID() })
	for _, sw := range switches {
		ctrlSide, swSide := of.Pipe()
		if err := sw.Start(swSide); err != nil {
			return err
		}
		conn := of.Conn(ctrlSide)
		if wrap != nil {
			conn = wrap(sw.DPID(), conn)
		}
		if err := accept(conn); err != nil {
			return err
		}
	}
	return nil
}

// hostMAC derives a deterministic host MAC from an index.
func hostMAC(i int) of.MAC {
	return of.MAC{0x02, 0x00, 0x00, 0x00, byte(i >> 8), byte(i)}
}

// hostIP derives a deterministic 10.0.x.y host address from an index.
func hostIP(i int) of.IPv4 {
	return of.IPv4FromOctets(10, 0, byte(i>>8), byte(i))
}

// Linear builds a linear topology s1-s2-…-sN with one host per switch.
// Port 1 of each switch faces its host; port 2 links left, port 3 links
// right. Hosts are h1..hN with MACs 02:00:00:00:00:0i and IPs 10.0.0.i.
func Linear(n int) (*Built, error) {
	if n < 1 {
		return nil, fmt.Errorf("netsim: linear topology needs >= 1 switch, got %d", n)
	}
	net := New()
	topo := topology.New()
	b := &Built{Net: net, Topo: topo}
	for i := 1; i <= n; i++ {
		sw, err := net.AddSwitch(of.DPID(i), 3, 0)
		if err != nil {
			return nil, err
		}
		topo.AddSwitch(of.DPID(i), sw.PortInfos())
	}
	for i := 1; i < n; i++ {
		if err := net.Link(of.DPID(i), 3, of.DPID(i+1), 2); err != nil {
			return nil, err
		}
		if err := topo.AddLink(topology.Link{A: of.DPID(i), APort: 3, B: of.DPID(i + 1), BPort: 2}); err != nil {
			return nil, err
		}
	}
	for i := 1; i <= n; i++ {
		h, err := net.AddHost(hostMAC(i), hostIP(i), of.DPID(i), 1)
		if err != nil {
			return nil, err
		}
		b.Hosts = append(b.Hosts, h)
		topo.AddHost(topology.Host{MAC: h.MAC(), IP: h.IP(), Switch: of.DPID(i), Port: 1})
	}
	return b, nil
}

// Star builds a hub-and-spoke topology: switch 1 is the core, switches
// 2..n+1 are edges each holding one host on port 1.
func Star(edges int) (*Built, error) {
	if edges < 1 {
		return nil, fmt.Errorf("netsim: star topology needs >= 1 edge, got %d", edges)
	}
	net := New()
	topo := topology.New()
	b := &Built{Net: net, Topo: topo}

	core, err := net.AddSwitch(1, edges, 0)
	if err != nil {
		return nil, err
	}
	topo.AddSwitch(1, core.PortInfos())
	for i := 0; i < edges; i++ {
		dpid := of.DPID(i + 2)
		sw, err := net.AddSwitch(dpid, 2, 0)
		if err != nil {
			return nil, err
		}
		topo.AddSwitch(dpid, sw.PortInfos())
		if err := net.Link(1, uint16(i+1), dpid, 2); err != nil {
			return nil, err
		}
		if err := topo.AddLink(topology.Link{A: 1, APort: uint16(i + 1), B: dpid, BPort: 2}); err != nil {
			return nil, err
		}
		h, err := net.AddHost(hostMAC(i+1), hostIP(i+1), dpid, 1)
		if err != nil {
			return nil, err
		}
		b.Hosts = append(b.Hosts, h)
		topo.AddHost(topology.Host{MAC: h.MAC(), IP: h.IP(), Switch: dpid, Port: 1})
	}
	return b, nil
}
