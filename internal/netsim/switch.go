package netsim

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"sdnshield/internal/flowtable"
	"sdnshield/internal/of"
)

// bufferedPacket is a packet parked in the switch awaiting a packet-out
// that references its buffer id.
type bufferedPacket struct {
	pkt    *of.Packet
	inPort uint16
}

// Switch is one simulated OpenFlow switch: a flow table, ports, counters
// and a control-channel loop.
type Switch struct {
	dpid  of.DPID
	net   *Network
	table *flowtable.Table

	mu      sync.Mutex
	ports   map[uint16]peer
	portsUp map[uint16]bool
	stats   map[uint16]*of.PortStatsEntry
	buffers map[uint32]bufferedPacket
	bufSeq  uint32
	bufFIFO []uint32

	ctrl    of.Conn
	started atomic.Bool
	xid     atomic.Uint32
	stop    chan struct{}
	done    chan struct{}
}

// DPID returns the switch's datapath id.
func (s *Switch) DPID() of.DPID { return s.dpid }

// Table exposes the switch's flow table (used by tests and the
// effectiveness experiments to inspect data-plane state).
func (s *Switch) Table() *flowtable.Table { return s.table }

func (s *Switch) checkPortFree(port uint16) error {
	p, ok := s.ports[port]
	if !ok {
		return fmt.Errorf("netsim: switch %v has no port %d", s.dpid, port)
	}
	if p.isHost || p.sw != 0 || p.port != 0 {
		return fmt.Errorf("netsim: switch %v port %d already wired", s.dpid, port)
	}
	return nil
}

// PortInfos describes the switch's ports for features replies.
func (s *Switch) PortInfos() []of.PortInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]of.PortInfo, 0, len(s.ports))
	for p := range s.ports {
		out = append(out, of.PortInfo{
			Port: p,
			Name: fmt.Sprintf("s%d-eth%d", uint64(s.dpid), p),
			Up:   s.portsUp[p],
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Port < out[j].Port })
	return out
}

// Start attaches the switch to its controller connection and launches the
// control loop. It sends HELLO and FEATURES_REPLY-on-request like a real
// switch. Stop terminates the loop.
func (s *Switch) Start(ctrl of.Conn) error {
	if s.started.Swap(true) {
		return fmt.Errorf("netsim: switch %v already started", s.dpid)
	}
	s.ctrl = ctrl
	if err := ctrl.Send(&of.Hello{Header: of.Header{Xid: s.nextXID()}}); err != nil {
		return fmt.Errorf("hello from %v: %w", s.dpid, err)
	}
	go s.controlLoop()
	return nil
}

// Stop terminates the control loop and waits for it.
func (s *Switch) Stop() {
	if !s.started.Load() {
		return
	}
	select {
	case <-s.stop:
		// already stopped
	default:
		close(s.stop)
		if s.ctrl != nil {
			s.ctrl.Close()
		}
	}
	<-s.done
}

func (s *Switch) nextXID() uint32 { return s.xid.Add(1) }

func (s *Switch) controlLoop() {
	defer close(s.done)
	for {
		msg, err := s.ctrl.Recv()
		if err != nil {
			return
		}
		select {
		case <-s.stop:
			return
		default:
		}
		s.handle(msg)
	}
}

func (s *Switch) send(msg of.Message) {
	if s.ctrl == nil {
		return
	}
	_ = s.ctrl.Send(msg) // the peer vanishing mid-send is benign here
}

func (s *Switch) sendError(xid uint32, code of.ErrorCode, format string, args ...interface{}) {
	s.send(&of.Error{
		Header:  of.Header{Xid: xid},
		Code:    code,
		Message: fmt.Sprintf(format, args...),
	})
}

func (s *Switch) handle(msg of.Message) {
	switch m := msg.(type) {
	case *of.Hello:
		// Symmetric hello; nothing to do.
	case *of.EchoRequest:
		s.send(&of.EchoReply{Header: of.Header{Xid: m.Xid}, Data: m.Data})
	case *of.FeaturesRequest:
		ports := s.PortInfos()
		s.send(&of.FeaturesReply{
			Header:   of.Header{Xid: m.Xid},
			DPID:     s.dpid,
			NumPorts: uint16(len(ports)),
			Ports:    ports,
		})
	case *of.FlowMod:
		s.handleFlowMod(m)
	case *of.PacketOut:
		s.handlePacketOut(m)
	case *of.StatsRequest:
		s.handleStatsRequest(m)
	case *of.BarrierRequest:
		s.send(&of.BarrierReply{Header: of.Header{Xid: m.Xid}})
	default:
		s.sendError(msg.XID(), of.ErrBadRequest, "unsupported message %v", msg.Type())
	}
}

func (s *Switch) handleFlowMod(m *of.FlowMod) {
	switch m.Command {
	case of.FlowAdd:
		err := s.table.Add(flowtable.Entry{
			Match:       m.Match,
			Priority:    m.Priority,
			Actions:     m.Actions,
			Cookie:      m.Cookie,
			IdleTimeout: m.IdleTimeout,
			HardTimeout: m.HardTimeout,
		})
		if err != nil {
			s.sendError(m.Xid, of.ErrTableFull, "add: %v", err)
		}
	case of.FlowModify:
		s.table.Modify(m.Match, m.Priority, false, m.Actions)
	case of.FlowDelete, of.FlowDeleteStrict:
		removed := s.table.Delete(m.Match, m.Priority, m.Command == of.FlowDeleteStrict)
		for _, e := range removed {
			s.send(&of.FlowRemoved{
				Header:   of.Header{Xid: s.nextXID()},
				DPID:     s.dpid,
				Match:    e.Match,
				Priority: e.Priority,
				Cookie:   e.Cookie,
				Reason:   of.RemovedDelete,
				Packets:  e.Packets,
				Bytes:    e.Bytes,
			})
		}
	default:
		s.sendError(m.Xid, of.ErrBadRequest, "unknown flow-mod command %v", m.Command)
	}
}

func (s *Switch) handlePacketOut(m *of.PacketOut) {
	pkt := m.Packet
	inPort := m.InPort
	if m.BufferID != 0 {
		s.mu.Lock()
		buffered, ok := s.buffers[m.BufferID]
		if ok {
			delete(s.buffers, m.BufferID)
		}
		s.mu.Unlock()
		if !ok {
			s.sendError(m.Xid, of.ErrBadRequest, "unknown buffer %d", m.BufferID)
			return
		}
		if pkt == nil {
			pkt = buffered.pkt
		}
		if inPort == of.PortNone {
			inPort = buffered.inPort
		}
	}
	if pkt == nil {
		s.sendError(m.Xid, of.ErrBadRequest, "packet-out without packet or buffer")
		return
	}
	s.executeActions(pkt.Clone(), inPort, m.Actions, maxHops)
}

func (s *Switch) handleStatsRequest(m *of.StatsRequest) {
	reply := &of.StatsReply{Header: of.Header{Xid: m.Xid}, DPID: s.dpid, Kind: m.Kind}
	switch m.Kind {
	case of.StatsFlow:
		reply.Flows = s.table.FlowStats(m.Match)
	case of.StatsPort:
		s.mu.Lock()
		ports := make([]uint16, 0, len(s.stats))
		for p := range s.stats {
			if m.Port == of.PortNone || m.Port == p {
				ports = append(ports, p)
			}
		}
		sort.Slice(ports, func(i, j int) bool { return ports[i] < ports[j] })
		for _, p := range ports {
			reply.Ports = append(reply.Ports, *s.stats[p])
		}
		s.mu.Unlock()
	case of.StatsSwitch:
		reply.Switch = s.table.Stats()
	default:
		s.sendError(m.Xid, of.ErrBadRequest, "unknown stats kind %v", m.Kind)
		return
	}
	s.send(reply)
}

// processPacket runs the data-plane pipeline for a packet arriving on
// inPort.
func (s *Switch) processPacket(pkt *of.Packet, inPort uint16, hops int) {
	if hops <= 0 {
		return
	}
	s.mu.Lock()
	if st, ok := s.stats[inPort]; ok {
		st.RxPackets++
		st.RxBytes += uint64(packetSize(pkt))
	}
	s.mu.Unlock()

	entry, ok := s.table.Lookup(pkt, inPort, uint64(packetSize(pkt)))
	if !ok {
		s.sendPacketIn(pkt, inPort, of.ReasonNoMatch)
		return
	}
	s.executeActions(pkt, inPort, entry.Actions, hops-1)
}

// InjectPacket inserts a packet into the switch pipeline as if it arrived
// on the given port (used by hosts and tests).
func (s *Switch) InjectPacket(pkt *of.Packet, inPort uint16) {
	s.processPacket(pkt.Clone(), inPort, maxHops)
}

func (s *Switch) executeActions(pkt *of.Packet, inPort uint16, actions []of.Action, hops int) {
	if len(actions) == 0 {
		return // drop
	}
	for _, a := range actions {
		switch a.Type {
		case of.ActionDrop:
			return
		case of.ActionSetField:
			pkt.SetFieldValue(a.Field, a.Value)
		case of.ActionFlood:
			s.flood(pkt, inPort, hops)
		case of.ActionOutput:
			switch a.Port {
			case of.PortFlood, of.PortAll:
				s.flood(pkt, inPort, hops)
			case of.PortController:
				s.sendPacketIn(pkt, inPort, of.ReasonAction)
			case of.PortInPort:
				s.net.deliver(s.dpid, inPort, pkt.Clone(), hops)
			case of.PortNone, of.PortLocal:
				// drop / local stack: nothing to deliver
			default:
				s.net.deliver(s.dpid, a.Port, pkt.Clone(), hops)
			}
		}
	}
}

func (s *Switch) flood(pkt *of.Packet, inPort uint16, hops int) {
	s.mu.Lock()
	ports := make([]uint16, 0, len(s.ports))
	for p := range s.ports {
		if p != inPort && s.portsUp[p] {
			ports = append(ports, p)
		}
	}
	s.mu.Unlock()
	sort.Slice(ports, func(i, j int) bool { return ports[i] < ports[j] })
	for _, p := range ports {
		s.net.deliver(s.dpid, p, pkt.Clone(), hops)
	}
}

func (s *Switch) sendPacketIn(pkt *of.Packet, inPort uint16, reason of.PacketInReason) {
	if s.ctrl == nil {
		return
	}
	s.mu.Lock()
	s.bufSeq++
	id := s.bufSeq
	s.buffers[id] = bufferedPacket{pkt: pkt.Clone(), inPort: inPort}
	s.bufFIFO = append(s.bufFIFO, id)
	for len(s.bufFIFO) > maxBuffers {
		evict := s.bufFIFO[0]
		s.bufFIFO = s.bufFIFO[1:]
		delete(s.buffers, evict)
	}
	s.mu.Unlock()

	s.send(&of.PacketIn{
		Header:   of.Header{Xid: s.nextXID()},
		DPID:     s.dpid,
		InPort:   inPort,
		Reason:   reason,
		BufferID: id,
		Packet:   pkt.Clone(),
	})
}

// SetPortState flips a port up or down and notifies the controller with a
// PORT_STATUS message, driving topology events.
func (s *Switch) SetPortState(port uint16, up bool) error {
	s.mu.Lock()
	if _, ok := s.ports[port]; !ok {
		s.mu.Unlock()
		return fmt.Errorf("netsim: switch %v has no port %d", s.dpid, port)
	}
	s.portsUp[port] = up
	s.mu.Unlock()
	s.send(&of.PortStatus{
		Header: of.Header{Xid: s.nextXID()},
		DPID:   s.dpid,
		Reason: of.PortModified,
		Port:   of.PortInfo{Port: port, Name: fmt.Sprintf("s%d-eth%d", uint64(s.dpid), port), Up: up},
	})
	return nil
}

// ExpireFlows evicts timed-out entries and emits FlowRemoved
// notifications; the harness calls it periodically.
func (s *Switch) ExpireFlows() {
	for _, exp := range s.table.Expire() {
		s.send(&of.FlowRemoved{
			Header:   of.Header{Xid: s.nextXID()},
			DPID:     s.dpid,
			Match:    exp.Entry.Match,
			Priority: exp.Entry.Priority,
			Cookie:   exp.Entry.Cookie,
			Reason:   exp.Reason,
			Packets:  exp.Entry.Packets,
			Bytes:    exp.Entry.Bytes,
		})
	}
}
