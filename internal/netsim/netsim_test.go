package netsim

import (
	"testing"
	"time"

	"sdnshield/internal/flowtable"
	"sdnshield/internal/of"
)

// startSwitch wires a switch to an in-memory controller connection and
// returns the controller side.
func startSwitch(t *testing.T, sw *Switch) of.Conn {
	t.Helper()
	ctrlSide, swSide := of.Pipe()
	if err := sw.Start(swSide); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sw.Stop)
	// Consume the HELLO.
	msg, err := ctrlSide.Recv()
	if err != nil || msg.Type() != of.MsgHello {
		t.Fatalf("expected HELLO, got (%v, %v)", msg, err)
	}
	return ctrlSide
}

// recvType receives messages until one of the wanted type arrives.
func recvType(t *testing.T, c of.Conn, want of.MsgType) of.Message {
	t.Helper()
	deadline := time.After(2 * time.Second)
	result := make(chan of.Message, 1)
	errCh := make(chan error, 1)
	go func() {
		for {
			msg, err := c.Recv()
			if err != nil {
				errCh <- err
				return
			}
			if msg.Type() == want {
				result <- msg
				return
			}
		}
	}()
	select {
	case msg := <-result:
		return msg
	case err := <-errCh:
		t.Fatalf("recv: %v", err)
	case <-deadline:
		t.Fatalf("timed out waiting for %v", want)
	}
	return nil
}

func TestFeaturesHandshake(t *testing.T) {
	net := New()
	sw, err := net.AddSwitch(7, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := startSwitch(t, sw)
	if err := ctrl.Send(&of.FeaturesRequest{Header: of.Header{Xid: 11}}); err != nil {
		t.Fatal(err)
	}
	reply := recvType(t, ctrl, of.MsgFeaturesReply).(*of.FeaturesReply)
	if reply.DPID != 7 || reply.NumPorts != 4 || len(reply.Ports) != 4 || reply.XID() != 11 {
		t.Errorf("features = %+v", reply)
	}
	// Echo.
	if err := ctrl.Send(&of.EchoRequest{Header: of.Header{Xid: 12}, Data: []byte("hi")}); err != nil {
		t.Fatal(err)
	}
	echo := recvType(t, ctrl, of.MsgEchoReply).(*of.EchoReply)
	if string(echo.Data) != "hi" {
		t.Errorf("echo = %+v", echo)
	}
	// Barrier.
	if err := ctrl.Send(&of.BarrierRequest{Header: of.Header{Xid: 13}}); err != nil {
		t.Fatal(err)
	}
	recvType(t, ctrl, of.MsgBarrierReply)
}

func TestPacketInOnTableMissAndPacketOut(t *testing.T) {
	b, err := Linear(2)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Net.Stop()
	sw1, _ := b.Net.Switch(1)
	ctrl := startSwitch(t, sw1)

	h1, h2 := b.Hosts[0], b.Hosts[1]
	h1.SendTCP(h2, 1234, 80, of.TCPFlagSYN, []byte("syn"))

	pin := recvType(t, ctrl, of.MsgPacketIn).(*of.PacketIn)
	if pin.DPID != 1 || pin.InPort != 1 || pin.Reason != of.ReasonNoMatch {
		t.Fatalf("packet-in = %+v", pin)
	}
	if pin.Packet.IPDst != h2.IP() {
		t.Errorf("packet content lost: %v", pin.Packet)
	}
	if pin.BufferID == 0 {
		t.Fatal("packet should be buffered")
	}

	// Packet-out by buffer id: forward out port 3 (toward s2); s2 has no
	// rules so it will also packet-in, but s2 has no controller — the
	// packet just dies there. Instead flood from s1 and verify nothing
	// explodes, then deliver directly to h1's side.
	err = ctrl.Send(&of.PacketOut{
		Header:   of.Header{Xid: 20},
		DPID:     1,
		BufferID: pin.BufferID,
		InPort:   of.PortNone,
		Actions:  []of.Action{of.Output(3)},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Reusing the buffer must fail.
	err = ctrl.Send(&of.PacketOut{
		Header:   of.Header{Xid: 21},
		DPID:     1,
		BufferID: pin.BufferID,
		InPort:   of.PortNone,
		Actions:  []of.Action{of.Output(3)},
	})
	if err != nil {
		t.Fatal(err)
	}
	e := recvType(t, ctrl, of.MsgError).(*of.Error)
	if e.XID() != 21 {
		t.Errorf("error xid = %d", e.XID())
	}
}

func TestFlowModInstallAndForward(t *testing.T) {
	b, err := Linear(2)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Net.Stop()
	sw1, _ := b.Net.Switch(1)
	sw2, _ := b.Net.Switch(2)
	c1 := startSwitch(t, sw1)
	c2 := startSwitch(t, sw2)

	h1, h2 := b.Hosts[0], b.Hosts[1]
	// Install forwarding rules: s1 sends h2-bound traffic out port 3,
	// s2 delivers to its host port 1.
	mustSend(t, c1, &of.FlowMod{
		Header: of.Header{Xid: 1}, DPID: 1, Command: of.FlowAdd,
		Match:    of.NewMatch().Set(of.FieldIPDst, uint64(h2.IP())),
		Priority: 10, Actions: []of.Action{of.Output(3)},
	})
	mustSend(t, c2, &of.FlowMod{
		Header: of.Header{Xid: 1}, DPID: 2, Command: of.FlowAdd,
		Match:    of.NewMatch().Set(of.FieldIPDst, uint64(h2.IP())),
		Priority: 10, Actions: []of.Action{of.Output(1)},
	})
	// Barrier both switches so the rules are definitely installed.
	mustSend(t, c1, &of.BarrierRequest{Header: of.Header{Xid: 2}})
	recvType(t, c1, of.MsgBarrierReply)
	mustSend(t, c2, &of.BarrierRequest{Header: of.Header{Xid: 2}})
	recvType(t, c2, of.MsgBarrierReply)

	h1.SendTCP(h2, 1234, 80, of.TCPFlagSYN, []byte("hello"))
	pkt, ok := h2.WaitFor(func(p *of.Packet) bool { return p.TPDst == 80 }, time.Second)
	if !ok {
		t.Fatal("packet not delivered end to end")
	}
	if string(pkt.Payload) != "hello" {
		t.Errorf("payload = %q", pkt.Payload)
	}
}

func mustSend(t *testing.T, c of.Conn, msg of.Message) {
	t.Helper()
	if err := c.Send(msg); err != nil {
		t.Fatal(err)
	}
}

func TestFloodReachesAllHostsOnce(t *testing.T) {
	b, err := Star(3)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Net.Stop()
	// Install flood rules everywhere (ARP learning style).
	for _, sw := range b.Net.Switches() {
		if err := sw.Table().Add(flowEntryFlood()); err != nil {
			t.Fatal(err)
		}
	}
	src := b.Hosts[0]
	src.Send(of.NewARPRequest(src.MAC(), src.IP(), b.Hosts[2].IP()))

	for i, h := range b.Hosts {
		if i == 0 {
			if len(h.Received()) != 0 {
				t.Error("sender must not receive its own broadcast")
			}
			continue
		}
		if _, ok := h.WaitFor(func(p *of.Packet) bool { return p.EthType == of.EthTypeARP }, time.Second); !ok {
			t.Errorf("host %d missed the broadcast", i)
		}
	}
}

func TestSetFieldRewrite(t *testing.T) {
	b, err := Linear(2)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Net.Stop()
	h1, h2 := b.Hosts[0], b.Hosts[1]
	sw1, _ := b.Net.Switch(1)
	sw2, _ := b.Net.Switch(2)

	// s1 rewrites the destination port (dynamic-flow-tunneling style) and
	// forwards; s2 delivers.
	err = sw1.Table().Add(flowEntry(
		of.NewMatch().Set(of.FieldTPDst, 8080),
		10,
		[]of.Action{of.SetField(of.FieldTPDst, 80), of.Output(3)},
	))
	if err != nil {
		t.Fatal(err)
	}
	if err := sw2.Table().Add(flowEntryTo(1)); err != nil {
		t.Fatal(err)
	}

	h1.SendTCP(h2, 5555, 8080, of.TCPFlagSYN, nil)
	pkt, ok := h2.WaitFor(func(p *of.Packet) bool { return p.IPProto == of.IPProtoTCP }, time.Second)
	if !ok {
		t.Fatal("packet lost")
	}
	if pkt.TPDst != 80 {
		t.Errorf("TPDst = %d, want rewritten 80", pkt.TPDst)
	}
}

func TestPortDownBlocksDelivery(t *testing.T) {
	b, err := Linear(2)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Net.Stop()
	sw1, _ := b.Net.Switch(1)
	sw2, _ := b.Net.Switch(2)
	ctrl := startSwitch(t, sw1)
	if err := sw1.Table().Add(flowEntryTo(3)); err != nil {
		t.Fatal(err)
	}
	if err := sw2.Table().Add(flowEntryTo(1)); err != nil {
		t.Fatal(err)
	}

	if err := sw1.SetPortState(3, false); err != nil {
		t.Fatal(err)
	}
	ps := recvType(t, ctrl, of.MsgPortStatus).(*of.PortStatus)
	if ps.Port.Port != 3 || ps.Port.Up {
		t.Errorf("port status = %+v", ps)
	}

	b.Hosts[0].SendTCP(b.Hosts[1], 1, 2, 0, nil)
	if _, ok := b.Hosts[1].WaitFor(func(*of.Packet) bool { return true }, 50*time.Millisecond); ok {
		t.Error("packet crossed a downed port")
	}

	if err := sw1.SetPortState(3, true); err != nil {
		t.Fatal(err)
	}
	b.Hosts[0].SendTCP(b.Hosts[1], 1, 2, 0, nil)
	if _, ok := b.Hosts[1].WaitFor(func(*of.Packet) bool { return true }, time.Second); !ok {
		t.Error("packet lost after port re-enable")
	}
	if err := sw1.SetPortState(99, false); err == nil {
		t.Error("unknown port accepted")
	}
}

func TestStatsCollection(t *testing.T) {
	b, err := Linear(2)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Net.Stop()
	sw1, _ := b.Net.Switch(1)
	ctrl := startSwitch(t, sw1)
	if err := sw1.Table().Add(flowEntryTo(3)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		b.Hosts[0].SendTCP(b.Hosts[1], 1000, 80, 0, []byte("x"))
	}

	mustSend(t, ctrl, &of.StatsRequest{Header: of.Header{Xid: 5}, DPID: 1, Kind: of.StatsFlow})
	fr := recvType(t, ctrl, of.MsgStatsReply).(*of.StatsReply)
	if len(fr.Flows) != 1 || fr.Flows[0].Packets != 5 {
		t.Errorf("flow stats = %+v", fr.Flows)
	}

	mustSend(t, ctrl, &of.StatsRequest{Header: of.Header{Xid: 6}, DPID: 1, Kind: of.StatsPort, Port: of.PortNone})
	pr := recvType(t, ctrl, of.MsgStatsReply).(*of.StatsReply)
	var rx, tx uint64
	for _, p := range pr.Ports {
		rx += p.RxPackets
		tx += p.TxPackets
	}
	if rx != 5 || tx != 5 {
		t.Errorf("port stats rx=%d tx=%d", rx, tx)
	}

	mustSend(t, ctrl, &of.StatsRequest{Header: of.Header{Xid: 7}, DPID: 1, Kind: of.StatsSwitch})
	sr := recvType(t, ctrl, of.MsgStatsReply).(*of.StatsReply)
	if sr.Switch.FlowCount != 1 || sr.Switch.PacketsTotal != 5 {
		t.Errorf("switch stats = %+v", sr.Switch)
	}
}

func TestFlowRemovedOnDelete(t *testing.T) {
	net := New()
	sw, err := net.AddSwitch(1, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := startSwitch(t, sw)
	mustSend(t, ctrl, &of.FlowMod{
		Header: of.Header{Xid: 1}, DPID: 1, Command: of.FlowAdd,
		Match: of.NewMatch().Set(of.FieldTPDst, 80), Priority: 7, Cookie: 99,
		Actions: []of.Action{of.Output(2)},
	})
	mustSend(t, ctrl, &of.FlowMod{
		Header: of.Header{Xid: 2}, DPID: 1, Command: of.FlowDelete,
		Match: of.NewMatch(),
	})
	fr := recvType(t, ctrl, of.MsgFlowRemoved).(*of.FlowRemoved)
	if fr.Cookie != 99 || fr.Reason != of.RemovedDelete || fr.Priority != 7 {
		t.Errorf("flow removed = %+v", fr)
	}
}

func TestWiringErrors(t *testing.T) {
	net := New()
	if _, err := net.AddSwitch(1, 2, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := net.AddSwitch(1, 2, 0); err == nil {
		t.Error("duplicate switch accepted")
	}
	if err := net.Link(1, 1, 9, 1); err == nil {
		t.Error("link to unknown switch accepted")
	}
	if _, err := net.AddSwitch(2, 2, 0); err != nil {
		t.Fatal(err)
	}
	if err := net.Link(1, 1, 2, 1); err != nil {
		t.Fatal(err)
	}
	if err := net.Link(1, 1, 2, 2); err == nil {
		t.Error("double-wiring a port accepted")
	}
	if _, err := net.AddHost(of.MAC{1}, 0, 1, 1); err == nil {
		t.Error("host on wired port accepted")
	}
	if _, err := net.AddHost(of.MAC{1}, 0, 1, 9); err == nil {
		t.Error("host on missing port accepted")
	}
	if _, err := net.AddHost(of.MAC{1}, 0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := net.AddHost(of.MAC{1}, 0, 2, 2); err == nil {
		t.Error("duplicate host accepted")
	}
}

func TestMalformedControlMessages(t *testing.T) {
	net := New()
	sw, err := net.AddSwitch(1, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := startSwitch(t, sw)
	// Unknown flow-mod command.
	mustSend(t, ctrl, &of.FlowMod{Header: of.Header{Xid: 1}, DPID: 1, Command: 99, Match: of.NewMatch()})
	e := recvType(t, ctrl, of.MsgError).(*of.Error)
	if e.Code != of.ErrBadRequest {
		t.Errorf("error = %+v", e)
	}
	// Packet-out with neither packet nor buffer.
	mustSend(t, ctrl, &of.PacketOut{Header: of.Header{Xid: 2}, DPID: 1, InPort: of.PortNone})
	e = recvType(t, ctrl, of.MsgError).(*of.Error)
	if e.XID() != 2 {
		t.Errorf("error xid = %d", e.XID())
	}
	// Unsupported message type (a stats reply sent to a switch).
	mustSend(t, ctrl, &of.StatsReply{Header: of.Header{Xid: 3}})
	e = recvType(t, ctrl, of.MsgError).(*of.Error)
	if e.XID() != 3 {
		t.Errorf("error xid = %d", e.XID())
	}
}

func TestTableCapacityError(t *testing.T) {
	net := New()
	sw, err := net.AddSwitch(1, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := startSwitch(t, sw)
	mustSend(t, ctrl, &of.FlowMod{
		Header: of.Header{Xid: 1}, DPID: 1, Command: of.FlowAdd,
		Match: of.NewMatch().Set(of.FieldTPDst, 80), Priority: 1,
	})
	mustSend(t, ctrl, &of.FlowMod{
		Header: of.Header{Xid: 2}, DPID: 1, Command: of.FlowAdd,
		Match: of.NewMatch().Set(of.FieldTPDst, 81), Priority: 1,
	})
	e := recvType(t, ctrl, of.MsgError).(*of.Error)
	if e.Code != of.ErrTableFull || e.XID() != 2 {
		t.Errorf("error = %+v", e)
	}
}

// --- helpers ---------------------------------------------------------------

func flowEntryFlood() flowtable.Entry {
	return flowEntry(of.NewMatch(), 1, []of.Action{of.Flood()})
}

func flowEntryTo(port uint16) flowtable.Entry {
	return flowEntry(of.NewMatch(), 1, []of.Action{of.Output(port)})
}

func flowEntry(m *of.Match, prio uint16, actions []of.Action) flowtable.Entry {
	return flowtable.Entry{Match: m, Priority: prio, Actions: actions}
}
