// Package topology maintains the controller's network graph: switches,
// inter-switch links and host attachment points. It provides shortest-path
// routing for the forwarding apps and the physical↔virtual mapping the
// permission engine's abstract-topology filters translate through (§VI-B).
package topology

import (
	"fmt"
	"sort"
	"sync"

	"sdnshield/internal/core"
	"sdnshield/internal/of"
)

// Link is a bidirectional inter-switch link with its endpoint ports.
type Link struct {
	A     of.DPID
	APort uint16
	B     of.DPID
	BPort uint16
}

// ID returns the canonical undirected identity of the link.
func (l Link) ID() core.LinkID { return core.NewLinkID(l.A, l.B) }

// String renders the link with its ports.
func (l Link) String() string {
	return fmt.Sprintf("%d:%d<->%d:%d", uint64(l.A), l.APort, uint64(l.B), l.BPort)
}

// Host is a host attachment point learned from traffic or configuration.
type Host struct {
	MAC    of.MAC
	IP     of.IPv4
	Switch of.DPID
	Port   uint16
}

// SwitchInfo describes one switch in the graph.
type SwitchInfo struct {
	DPID  of.DPID
	Ports []of.PortInfo
}

// Topology is a concurrency-safe network graph.
type Topology struct {
	mu       sync.RWMutex
	switches map[of.DPID]SwitchInfo
	links    map[core.LinkID]Link
	hosts    map[of.MAC]Host
}

// New returns an empty topology.
func New() *Topology {
	return &Topology{
		switches: make(map[of.DPID]SwitchInfo),
		links:    make(map[core.LinkID]Link),
		hosts:    make(map[of.MAC]Host),
	}
}

// AddSwitch registers a switch and its ports, replacing any previous
// entry for the DPID.
func (t *Topology) AddSwitch(dpid of.DPID, ports []of.PortInfo) {
	t.mu.Lock()
	defer t.mu.Unlock()
	copied := make([]of.PortInfo, len(ports))
	copy(copied, ports)
	t.switches[dpid] = SwitchInfo{DPID: dpid, Ports: copied}
}

// RemoveSwitch drops a switch and every link touching it.
func (t *Topology) RemoveSwitch(dpid of.DPID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.switches, dpid)
	for id, l := range t.links {
		if l.A == dpid || l.B == dpid {
			delete(t.links, id)
		}
	}
	for mac, h := range t.hosts {
		if h.Switch == dpid {
			delete(t.hosts, mac)
		}
	}
}

// HasSwitch reports whether the DPID is known.
func (t *Topology) HasSwitch(dpid of.DPID) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, ok := t.switches[dpid]
	return ok
}

// Switches returns all switches sorted by DPID.
func (t *Topology) Switches() []SwitchInfo {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]SwitchInfo, 0, len(t.switches))
	for _, s := range t.switches {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].DPID < out[j].DPID })
	return out
}

// SwitchIDs returns all DPIDs sorted.
func (t *Topology) SwitchIDs() []of.DPID {
	sws := t.Switches()
	out := make([]of.DPID, len(sws))
	for i, s := range sws {
		out[i] = s.DPID
	}
	return out
}

// AddLink registers a bidirectional link. Both endpoints must be known
// switches.
func (t *Topology) AddLink(l Link) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.switches[l.A]; !ok {
		return fmt.Errorf("topology: unknown switch %v", l.A)
	}
	if _, ok := t.switches[l.B]; !ok {
		return fmt.Errorf("topology: unknown switch %v", l.B)
	}
	t.links[l.ID()] = l
	return nil
}

// RemoveLink drops the link between two switches.
func (t *Topology) RemoveLink(a, b of.DPID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.links, core.NewLinkID(a, b))
}

// Links returns all links sorted by canonical id.
func (t *Topology) Links() []Link {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]Link, 0, len(t.links))
	for _, l := range t.links {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool {
		li, lj := out[i].ID(), out[j].ID()
		if li.A != lj.A {
			return li.A < lj.A
		}
		return li.B < lj.B
	})
	return out
}

// LinkIDs returns the canonical ids of all links, sorted.
func (t *Topology) LinkIDs() []core.LinkID {
	links := t.Links()
	out := make([]core.LinkID, len(links))
	for i, l := range links {
		out[i] = l.ID()
	}
	return out
}

// AddHost records (or refreshes) a host attachment point.
func (t *Topology) AddHost(h Host) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.hosts[h.MAC] = h
}

// HostByMAC looks a host up by MAC address.
func (t *Topology) HostByMAC(mac of.MAC) (Host, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	h, ok := t.hosts[mac]
	return h, ok
}

// HostByIP looks a host up by IPv4 address.
func (t *Topology) HostByIP(ip of.IPv4) (Host, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, h := range t.hosts {
		if h.IP == ip {
			return h, true
		}
	}
	return Host{}, false
}

// Hosts returns all hosts sorted by MAC.
func (t *Topology) Hosts() []Host {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]Host, 0, len(t.hosts))
	for _, h := range t.hosts {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].MAC.Uint64() < out[j].MAC.Uint64() })
	return out
}

// neighbor returns, for each switch, its adjacent (switch, local port)
// pairs. Caller must hold at least the read lock.
func (t *Topology) neighborsLocked(dpid of.DPID) []struct {
	next of.DPID
	port uint16
} {
	var out []struct {
		next of.DPID
		port uint16
	}
	for _, l := range t.links {
		switch dpid {
		case l.A:
			out = append(out, struct {
				next of.DPID
				port uint16
			}{l.B, l.APort})
		case l.B:
			out = append(out, struct {
				next of.DPID
				port uint16
			}{l.A, l.BPort})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].next < out[j].next })
	return out
}

// Hop is one step of a forwarding path: the switch and the port leading
// toward the next hop (or the destination host for the final hop, which
// the caller fills in).
type Hop struct {
	DPID    of.DPID
	OutPort uint16
}

// ShortestPath computes a minimum-hop path of switches from src to dst
// using BFS (ties broken deterministically by DPID). The returned hops
// cover src..dst; the final hop's OutPort is zero and must be set by the
// caller to the destination host's port. ok is false when dst is
// unreachable.
func (t *Topology) ShortestPath(src, dst of.DPID) ([]Hop, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if _, ok := t.switches[src]; !ok {
		return nil, false
	}
	if _, ok := t.switches[dst]; !ok {
		return nil, false
	}
	if src == dst {
		return []Hop{{DPID: src}}, true
	}
	visited := map[of.DPID]crumb{src: {prev: src}}
	queue := []of.DPID{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range t.neighborsLocked(cur) {
			if _, seen := visited[nb.next]; seen {
				continue
			}
			visited[nb.next] = crumb{prev: cur, outPort: nb.port}
			if nb.next == dst {
				return t.rebuildPath(visited, src, dst), true
			}
			queue = append(queue, nb.next)
		}
	}
	return nil, false
}

func (t *Topology) rebuildPath(visited map[of.DPID]crumb, src, dst of.DPID) []Hop {
	var rev []Hop
	cur := dst
	for cur != src {
		c := visited[cur]
		rev = append(rev, Hop{DPID: c.prev, OutPort: c.outPort})
		cur = c.prev
	}
	out := make([]Hop, 0, len(rev)+1)
	for i := len(rev) - 1; i >= 0; i-- {
		out = append(out, rev[i])
	}
	return append(out, Hop{DPID: dst})
}

// crumb is the BFS back-pointer: the previous switch and the port on it
// leading here.
type crumb struct {
	prev    of.DPID
	outPort uint16
}

// AttachPoint is a (switch, port) location in the physical network.
type AttachPoint struct {
	Switch of.DPID
	Port   uint16
}

// ExternalPorts returns, per switch, the up ports not consumed by
// inter-switch links — the host-facing ports that become the ports of a
// virtual big switch. Sorted by (DPID, port).
func (t *Topology) ExternalPorts() []AttachPoint {
	t.mu.RLock()
	defer t.mu.RUnlock()
	internal := make(map[of.DPID]map[uint16]bool)
	mark := func(d of.DPID, p uint16) {
		if internal[d] == nil {
			internal[d] = make(map[uint16]bool)
		}
		internal[d][p] = true
	}
	for _, l := range t.links {
		mark(l.A, l.APort)
		mark(l.B, l.BPort)
	}
	var out []AttachPoint
	for _, s := range t.switches {
		for _, p := range s.Ports {
			if p.Up && !internal[s.DPID][p.Port] {
				out = append(out, AttachPoint{Switch: s.DPID, Port: p.Port})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Switch != out[j].Switch {
			return out[i].Switch < out[j].Switch
		}
		return out[i].Port < out[j].Port
	})
	return out
}
