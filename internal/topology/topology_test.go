package topology

import (
	"sync"
	"testing"

	"sdnshield/internal/core"
	"sdnshield/internal/of"
)

// buildLinear builds s1 - s2 - ... - sN, each switch with host port 1 and
// link ports 2 (left) / 3 (right).
func buildLinear(t *testing.T, n int) *Topology {
	t.Helper()
	topo := New()
	for i := 1; i <= n; i++ {
		topo.AddSwitch(of.DPID(i), []of.PortInfo{
			{Port: 1, Name: "host", Up: true},
			{Port: 2, Name: "left", Up: true},
			{Port: 3, Name: "right", Up: true},
		})
	}
	for i := 1; i < n; i++ {
		if err := topo.AddLink(Link{A: of.DPID(i), APort: 3, B: of.DPID(i + 1), BPort: 2}); err != nil {
			t.Fatal(err)
		}
	}
	return topo
}

func TestAddRemoveSwitchesAndLinks(t *testing.T) {
	topo := buildLinear(t, 3)
	if len(topo.Switches()) != 3 || len(topo.Links()) != 2 {
		t.Fatalf("got %d switches, %d links", len(topo.Switches()), len(topo.Links()))
	}
	if !topo.HasSwitch(2) || topo.HasSwitch(9) {
		t.Error("HasSwitch wrong")
	}
	ids := topo.SwitchIDs()
	if len(ids) != 3 || ids[0] != 1 || ids[2] != 3 {
		t.Errorf("SwitchIDs = %v", ids)
	}

	// Links to unknown switches are rejected.
	if err := topo.AddLink(Link{A: 1, B: 99}); err == nil {
		t.Error("link to unknown switch accepted")
	}

	topo.RemoveSwitch(2)
	if len(topo.Links()) != 0 {
		t.Error("removing a switch must drop its links")
	}
	topo.RemoveLink(1, 3) // absent: no-op
}

func TestShortestPathLinear(t *testing.T) {
	topo := buildLinear(t, 5)
	path, ok := topo.ShortestPath(1, 4)
	if !ok {
		t.Fatal("path not found")
	}
	want := []Hop{{DPID: 1, OutPort: 3}, {DPID: 2, OutPort: 3}, {DPID: 3, OutPort: 3}, {DPID: 4}}
	if len(path) != len(want) {
		t.Fatalf("path = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Errorf("hop %d = %v, want %v", i, path[i], want[i])
		}
	}
	// Reverse direction uses the left-facing ports.
	rev, ok := topo.ShortestPath(4, 1)
	if !ok || rev[0].OutPort != 2 {
		t.Errorf("reverse path = %v", rev)
	}
	// Degenerate path.
	self, ok := topo.ShortestPath(3, 3)
	if !ok || len(self) != 1 || self[0].DPID != 3 {
		t.Errorf("self path = %v", self)
	}
}

func TestShortestPathPicksShortBranch(t *testing.T) {
	// Diamond: 1-2-4 and 1-3-4 plus direct 1-4.
	topo := New()
	for i := 1; i <= 4; i++ {
		topo.AddSwitch(of.DPID(i), []of.PortInfo{{Port: 1, Up: true}, {Port: 2, Up: true}, {Port: 3, Up: true}, {Port: 4, Up: true}})
	}
	mustLink := func(l Link) {
		t.Helper()
		if err := topo.AddLink(l); err != nil {
			t.Fatal(err)
		}
	}
	mustLink(Link{A: 1, APort: 2, B: 2, BPort: 2})
	mustLink(Link{A: 2, APort: 3, B: 4, BPort: 2})
	mustLink(Link{A: 1, APort: 3, B: 3, BPort: 2})
	mustLink(Link{A: 3, APort: 3, B: 4, BPort: 3})
	mustLink(Link{A: 1, APort: 4, B: 4, BPort: 4})

	path, ok := topo.ShortestPath(1, 4)
	if !ok || len(path) != 2 {
		t.Fatalf("expected direct 2-hop path, got %v", path)
	}
	if path[0].OutPort != 4 {
		t.Errorf("direct link port = %d", path[0].OutPort)
	}

	topo.RemoveLink(1, 4)
	path, ok = topo.ShortestPath(1, 4)
	if !ok || len(path) != 3 {
		t.Fatalf("expected 3-hop path, got %v", path)
	}
	// Deterministic tie break: neighbor 2 before 3.
	if path[1].DPID != 2 {
		t.Errorf("tie break should pick switch 2, got %v", path[1].DPID)
	}

	// Unreachable destination.
	topo.AddSwitch(99, nil)
	if _, ok := topo.ShortestPath(1, 99); ok {
		t.Error("disconnected switch should be unreachable")
	}
	if _, ok := topo.ShortestPath(1, 1234); ok {
		t.Error("unknown switch should be unreachable")
	}
}

func TestHosts(t *testing.T) {
	topo := buildLinear(t, 2)
	h1 := Host{MAC: of.MAC{0, 0, 0, 0, 0, 1}, IP: of.IPv4FromOctets(10, 0, 0, 1), Switch: 1, Port: 1}
	h2 := Host{MAC: of.MAC{0, 0, 0, 0, 0, 2}, IP: of.IPv4FromOctets(10, 0, 0, 2), Switch: 2, Port: 1}
	topo.AddHost(h1)
	topo.AddHost(h2)

	if got, ok := topo.HostByMAC(h1.MAC); !ok || got != h1 {
		t.Errorf("HostByMAC = %v, %v", got, ok)
	}
	if got, ok := topo.HostByIP(h2.IP); !ok || got != h2 {
		t.Errorf("HostByIP = %v, %v", got, ok)
	}
	if _, ok := topo.HostByIP(of.IPv4FromOctets(9, 9, 9, 9)); ok {
		t.Error("unknown IP resolved")
	}
	if hosts := topo.Hosts(); len(hosts) != 2 || hosts[0] != h1 {
		t.Errorf("Hosts = %v", hosts)
	}
	// Moving a host refreshes its attachment.
	h1b := h1
	h1b.Switch, h1b.Port = 2, 1
	topo.AddHost(h1b)
	if got, _ := topo.HostByMAC(h1.MAC); got.Switch != 2 {
		t.Error("host move not recorded")
	}
	// Removing the switch drops its hosts.
	topo.RemoveSwitch(2)
	if _, ok := topo.HostByMAC(h2.MAC); ok {
		t.Error("host on removed switch should vanish")
	}
}

func TestExternalPortsAndBigSwitchMap(t *testing.T) {
	topo := buildLinear(t, 3)
	// External ports: s1: 1,2 (left edge unused), s2: 1, s3: 1,3.
	ext := topo.ExternalPorts()
	want := []AttachPoint{{1, 1}, {1, 2}, {2, 1}, {3, 1}, {3, 3}}
	if len(ext) != len(want) {
		t.Fatalf("external ports = %v", ext)
	}
	for i := range want {
		if ext[i] != want[i] {
			t.Errorf("ext[%d] = %v, want %v", i, ext[i], want[i])
		}
	}

	m := BuildBigSwitchMap(topo)
	if m.NumPorts() != 5 {
		t.Fatalf("NumPorts = %d", m.NumPorts())
	}
	ap, err := m.Physical(3)
	if err != nil || ap != (AttachPoint{2, 1}) {
		t.Errorf("Physical(3) = %v, %v", ap, err)
	}
	if _, err := m.Physical(0); err == nil {
		t.Error("virtual port 0 must be invalid")
	}
	if _, err := m.Physical(6); err == nil {
		t.Error("out-of-range virtual port must be invalid")
	}
	if v, ok := m.Virtual(AttachPoint{3, 1}); !ok || v != 4 {
		t.Errorf("Virtual = %d, %v", v, ok)
	}
	if _, ok := m.Virtual(AttachPoint{1, 3}); ok {
		t.Error("internal port must not map")
	}
	ports := m.Ports()
	if len(ports) != 5 || ports[0].Port != 1 || !ports[0].Up {
		t.Errorf("Ports = %v", ports)
	}
}

func TestLinkID(t *testing.T) {
	l := Link{A: 5, APort: 1, B: 2, BPort: 9}
	if l.ID() != core.NewLinkID(2, 5) {
		t.Errorf("ID = %v", l.ID())
	}
	if l.String() == "" {
		t.Error("empty String")
	}
}

func TestTopologyConcurrentAccess(t *testing.T) {
	// Smoke test under the race detector: concurrent reads and writes.
	topo := buildLinear(t, 8)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(2)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				topo.AddHost(Host{MAC: of.MAC{byte(seed), byte(i)}, Switch: of.DPID(1 + i%8), Port: 1})
				topo.ShortestPath(of.DPID(1+i%8), of.DPID(1+(i+3)%8))
			}
		}(w)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				topo.Switches()
				topo.Links()
				topo.Hosts()
				topo.ExternalPorts()
			}
		}()
	}
	wg.Wait()
}
