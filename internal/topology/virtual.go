package topology

import (
	"fmt"

	"sdnshield/internal/of"
)

// BigSwitchMap is the physical↔virtual translation table behind a
// VIRTUAL SINGLE_BIG_SWITCH filter (§VI-B1): the virtual switch's ports
// are the physical network's external (host-facing) ports, numbered
// densely from 1 in deterministic (DPID, port) order.
type BigSwitchMap struct {
	// VirtualDPID is the DPID the app sees (always 0 in this
	// implementation, matching core.VirtTopoFilter's convention).
	VirtualDPID of.DPID
	toPhys      []AttachPoint          // index = virtual port - 1
	toVirt      map[AttachPoint]uint16 // physical -> virtual port
}

// BuildBigSwitchMap snapshots the topology's external ports into a
// translation table. The map is immutable; rebuild it on topology change.
func BuildBigSwitchMap(t *Topology) *BigSwitchMap {
	ext := t.ExternalPorts()
	m := &BigSwitchMap{
		toPhys: ext,
		toVirt: make(map[AttachPoint]uint16, len(ext)),
	}
	for i, ap := range ext {
		m.toVirt[ap] = uint16(i + 1)
	}
	return m
}

// NumPorts returns the virtual switch's port count.
func (m *BigSwitchMap) NumPorts() int { return len(m.toPhys) }

// Physical resolves a virtual port to its physical attachment point.
func (m *BigSwitchMap) Physical(vport uint16) (AttachPoint, error) {
	if vport == 0 || int(vport) > len(m.toPhys) {
		return AttachPoint{}, fmt.Errorf("topology: virtual port %d out of range 1..%d", vport, len(m.toPhys))
	}
	return m.toPhys[vport-1], nil
}

// Virtual resolves a physical attachment point to its virtual port.
func (m *BigSwitchMap) Virtual(ap AttachPoint) (uint16, bool) {
	v, ok := m.toVirt[ap]
	return v, ok
}

// Ports lists the virtual switch's ports as PortInfo for features
// replies on the virtual view.
func (m *BigSwitchMap) Ports() []of.PortInfo {
	out := make([]of.PortInfo, len(m.toPhys))
	for i, ap := range m.toPhys {
		out[i] = of.PortInfo{
			Port: uint16(i + 1),
			Name: fmt.Sprintf("v%d(s%d:p%d)", i+1, uint64(ap.Switch), ap.Port),
			Up:   true,
		}
	}
	return out
}
