package market

import (
	"errors"
	"testing"

	"sdnshield/internal/obs/audit"
)

func newTestRegistry(t *testing.T) (*Registry, func(r Release) *SignedRelease) {
	t.Helper()
	pub, priv := genKey(t)
	reg := NewRegistry()
	if err := reg.TrustVendor("acme", pub); err != nil {
		t.Fatal(err)
	}
	return reg, func(r Release) *SignedRelease { return Sign(r, priv) }
}

func TestSubmitAcceptsValidPackage(t *testing.T) {
	reg, sign := newTestRegistry(t)
	sr := sign(Release{Name: "mon", Vendor: "acme", Version: "1.0.0", Manifest: "PERM read_statistics"})
	d, err := reg.Submit(sr)
	if err != nil {
		t.Fatal(err)
	}
	got, err := reg.Release(d)
	if err != nil {
		t.Fatal(err)
	}
	if got.Manifest != sr.Manifest {
		t.Fatal("stored manifest differs")
	}
	// Identical resubmission is idempotent.
	if _, err := reg.Submit(sr); err != nil {
		t.Fatalf("idempotent resubmit: %v", err)
	}
}

func TestSubmitRejectsUnknownVendor(t *testing.T) {
	reg, _ := newTestRegistry(t)
	_, priv := genKey(t)
	sr := Sign(Release{Name: "mon", Vendor: "shady", Version: "1.0.0", Manifest: "PERM read_statistics"}, priv)
	if _, err := reg.Submit(sr); !errors.Is(err, ErrUnknownVendor) {
		t.Fatalf("err = %v, want ErrUnknownVendor", err)
	}
}

func TestSubmitRejectsTamperedPackage(t *testing.T) {
	reg, sign := newTestRegistry(t)
	sr := sign(Release{Name: "mon", Vendor: "acme", Version: "1.0.0", Manifest: "PERM read_statistics"})
	// Tamper after signing: the classic supply-chain rewrite.
	sr.Manifest = "PERM read_statistics\nPERM process_runtime"
	if _, err := reg.Submit(sr); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("err = %v, want ErrBadSignature", err)
	}
	if len(reg.Releases("mon")) != 0 {
		t.Fatal("tampered release was stored")
	}
}

func TestSubmitRejectsGarbageManifestAndBadVersion(t *testing.T) {
	reg, sign := newTestRegistry(t)
	if _, err := reg.Submit(sign(Release{Name: "m", Vendor: "acme", Version: "1.0.0", Manifest: "PERM not_a_token"})); err == nil {
		t.Fatal("garbage manifest accepted")
	}
	if _, err := reg.Submit(sign(Release{Name: "m", Vendor: "acme", Version: "one", Manifest: "PERM read_statistics"})); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestSubmitRejectsConflictingVersion(t *testing.T) {
	reg, sign := newTestRegistry(t)
	if _, err := reg.Submit(sign(Release{Name: "m", Vendor: "acme", Version: "1.0.0", Manifest: "PERM read_statistics"})); err != nil {
		t.Fatal(err)
	}
	conflicting := sign(Release{Name: "m", Vendor: "acme", Version: "1.0.0", Manifest: "PERM insert_flow"})
	if _, err := reg.Submit(conflicting); !errors.Is(err, ErrDuplicateRelease) {
		t.Fatalf("err = %v, want ErrDuplicateRelease", err)
	}
}

func TestReleasesSortedBySemverAndLatest(t *testing.T) {
	reg, sign := newTestRegistry(t)
	for _, v := range []string{"2.0.0", "1.0.0", "1.10.0", "1.2.0"} {
		if _, err := reg.Submit(sign(Release{Name: "m", Vendor: "acme", Version: v, Manifest: "PERM read_statistics LIMITING PORT_LEVEL"})); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	for _, r := range reg.Releases("m") {
		got = append(got, r.Version)
	}
	want := []string{"1.0.0", "1.2.0", "1.10.0", "2.0.0"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	latest, ok := reg.Latest("m")
	if !ok || latest.Version != "2.0.0" {
		t.Fatalf("Latest = %v", latest)
	}
}

func TestSubmitRejectionAudited(t *testing.T) {
	reg, _ := newTestRegistry(t)
	_, priv := genKey(t)
	sr := Sign(Release{Name: "evil", Vendor: "shady", Version: "1.0.0", Manifest: "PERM read_statistics"}, priv)
	before := audit.Default().LastSeq()
	if _, err := reg.Submit(sr); err == nil {
		t.Fatal("expected rejection")
	}
	audit.Default().DrainNow()
	evs := audit.Default().Query(audit.Filter{App: "evil", Kind: audit.KindMarket, Verdict: audit.VerdictReject, AfterSeq: before})
	if len(evs) == 0 {
		t.Fatal("no audit event for rejected submission")
	}
}
