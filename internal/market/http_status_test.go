package market

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"sdnshield/internal/jobs"
	"sdnshield/internal/obs"
)

// getPath GETs a path on a composed handler.
func getPath(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
	return w
}

// errBody asserts the response carries a JSON {"error": ...} body — the
// contract that replaced bare 500s.
func errBody(t *testing.T, w *httptest.ResponseRecorder) string {
	t.Helper()
	var body struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil || body.Error == "" {
		t.Fatalf("error response is not {\"error\": ...}: %s", w.Body)
	}
	return body.Error
}

// TestHTTPStatusCodes is the table-driven contract for every error
// shape the market surface can answer: correct status, JSON error body.
func TestHTTPStatusCodes(t *testing.T) {
	h, _, sign := newHTTPEnv(t)
	unknownDigest := PolicyDigest("no-such-release").String()
	sr := sign(Release{Name: "mon", Vendor: "acme", Version: "1.0.0", Manifest: "PERM read_statistics"})
	if w := postJSON(t, h, "/market/install", sr); w.Code != http.StatusOK {
		t.Fatalf("seed install = %d: %s", w.Code, w.Body)
	}

	cases := []struct {
		name string
		do   func() *httptest.ResponseRecorder
		want int
		// substr, when set, must appear in the JSON error body.
		substr string
	}{
		{"install GET method", func() *httptest.ResponseRecorder {
			return getPath(t, h, "/market/install")
		}, http.StatusMethodNotAllowed, ""},
		{"install malformed JSON", func() *httptest.ResponseRecorder {
			w := httptest.NewRecorder()
			h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/market/install", strings.NewReader("{nope")))
			return w
		}, http.StatusBadRequest, "bad package JSON"},
		{"install bad digest string", func() *httptest.ResponseRecorder {
			return postJSON(t, h, "/market/install", map[string]string{"digest": "zz"})
		}, http.StatusBadRequest, ""},
		{"install unknown digest", func() *httptest.ResponseRecorder {
			return postJSON(t, h, "/market/install", map[string]string{"digest": unknownDigest})
		}, http.StatusNotFound, "unknown release"},
		{"approve nothing pending", func() *httptest.ResponseRecorder {
			return postJSON(t, h, "/market/approve", map[string]string{"app": "ghost"})
		}, http.StatusNotFound, "nothing pending"},
		{"revoke not installed", func() *httptest.ResponseRecorder {
			return postJSON(t, h, "/market/revoke", map[string]string{"app": "ghost"})
		}, http.StatusNotFound, "not installed"},
		{"approve empty body", func() *httptest.ResponseRecorder {
			return postJSON(t, h, "/market/approve", map[string]string{})
		}, http.StatusBadRequest, ""},
		{"diff no params", func() *httptest.ResponseRecorder {
			return getPath(t, h, "/market/diff")
		}, http.StatusBadRequest, "need ?app=NAME"},
		{"diff unknown app", func() *httptest.ResponseRecorder {
			return getPath(t, h, "/market/diff?app=ghost")
		}, http.StatusNotFound, "no stored releases"},
		{"diff single release", func() *httptest.ResponseRecorder {
			return getPath(t, h, "/market/diff?app=mon")
		}, http.StatusBadRequest, "need two to diff"},
		{"diff bad from digest", func() *httptest.ResponseRecorder {
			return getPath(t, h, "/market/diff?from=zz&to="+unknownDigest)
		}, http.StatusBadRequest, ""},
		{"release missing digest param", func() *httptest.ResponseRecorder {
			return getPath(t, h, "/market/release")
		}, http.StatusBadRequest, "need ?digest"},
		{"release unknown digest", func() *httptest.ResponseRecorder {
			return getPath(t, h, "/market/release?digest="+unknownDigest)
		}, http.StatusNotFound, "unknown release"},
		{"log bad after", func() *httptest.ResponseRecorder {
			return getPath(t, h, "/market/log?after=banana")
		}, http.StatusBadRequest, ""},
		{"jobs without spine", func() *httptest.ResponseRecorder {
			return getPath(t, h, "/market/jobs")
		}, http.StatusServiceUnavailable, "no job manager"},
		{"job by ID without spine", func() *httptest.ResponseRecorder {
			return getPath(t, h, "/market/jobs/1")
		}, http.StatusServiceUnavailable, "no job manager"},
		{"lease not configured", func() *httptest.ResponseRecorder {
			return getPath(t, h, "/market/lease")
		}, http.StatusNotFound, "no leader lease"},
		{"recompute unknown app", func() *httptest.ResponseRecorder {
			return postJSON(t, h, "/market/recompute", map[string]string{"app": "ghost"})
		}, http.StatusNotFound, "no stored releases"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := tc.do()
			if w.Code != tc.want {
				t.Fatalf("status = %d, want %d; body: %s", w.Code, tc.want, w.Body)
			}
			got := errBody(t, w)
			if tc.substr != "" && !strings.Contains(got, tc.substr) {
				t.Fatalf("error %q does not mention %q", got, tc.substr)
			}
		})
	}
}

// TestHTTPAsyncStatusCodes covers the job-spine surface: 202 on
// submission, job polling, 404 on unknown jobs, 429 when the queue is
// at its admission bound.
func TestHTTPAsyncStatusCodes(t *testing.T) {
	reg, sign := newTestRegistry(t)
	m, err := New(reg, newFakeRuntime(), Config{PolicySrc: testPolicy})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	jm, err := jobs.Open(jobs.Config{MaxDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = jm.Close() })
	// Deliberately no AttachJobs handlers for install: register the
	// manager but park the queue so enqueued jobs pile up against
	// MaxDepth. Handle is registered for no queue here.
	m.mu.Lock()
	m.jobsMgr = jm
	m.mu.Unlock()
	MountHTTP(m)
	h := obs.NewHandler(obs.Default(), nil)

	sr := sign(Release{Name: "mon", Vendor: "acme", Version: "1.0.0", Manifest: "PERM read_statistics"})
	if _, err := reg.Submit(sr); err != nil {
		t.Fatal(err)
	}
	dig := map[string]string{"digest": sr.Digest().String()}

	// First submission is accepted asynchronously.
	w := postJSON(t, h, "/market/install", dig)
	if w.Code != http.StatusAccepted {
		t.Fatalf("install = %d, want 202: %s", w.Code, w.Body)
	}
	var acc jobAccepted
	if err := json.Unmarshal(w.Body.Bytes(), &acc); err != nil {
		t.Fatal(err)
	}
	if acc.Poll == "" || acc.Queue != QueueInstall {
		t.Fatalf("202 body = %+v", acc)
	}
	// The parked job polls as pending.
	if w := getPath(t, h, acc.Poll); w.Code != http.StatusOK || !strings.Contains(w.Body.String(), string(jobs.StatePending)) {
		t.Fatalf("poll = %d %s", w.Code, w.Body)
	}
	// Queue depth 1 is exhausted: backpressure is 429, not 500.
	w = postJSON(t, h, "/market/install", dig)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("over-depth install = %d, want 429: %s", w.Code, w.Body)
	}
	errBody(t, w)
	// Unknown and malformed job IDs.
	if w := getPath(t, h, "/market/jobs/999999"); w.Code != http.StatusNotFound {
		t.Fatalf("unknown job = %d", w.Code)
	}
	if w := getPath(t, h, "/market/jobs/banana"); w.Code != http.StatusBadRequest {
		t.Fatalf("bad job ID = %d", w.Code)
	}
	// The dashboard lists the queue.
	if w := getPath(t, h, "/market/jobs"); w.Code != http.StatusOK || !strings.Contains(w.Body.String(), QueueInstall) {
		t.Fatalf("jobs index = %d %s", w.Code, w.Body)
	}

	// Attach workers: the parked job completes and the result is pollable.
	m.AttachJobs(jm, 1)
	waitCond(t, "parked job completes", func() bool {
		s, ok := jm.Status(acc.JobID)
		return ok && s.State == jobs.StateDone
	})
	if w := getPath(t, h, acc.Poll); !strings.Contains(w.Body.String(), string(StatusActive)) {
		t.Fatalf("completed poll body: %s", w.Body)
	}
}
