package market

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"sdnshield/internal/controller"
	"sdnshield/internal/core"
	"sdnshield/internal/isolation"
	"sdnshield/internal/netsim"
	"sdnshield/internal/obs/audit"
	"sdnshield/internal/of"
	"sdnshield/internal/permengine"
)

// e2ePolicy bounds the sensor app: packet-in events, statistics, and
// flow insertion only into 10.1/16.
const e2ePolicy = `
LET Bound = { PERM pkt_in_event PERM read_statistics PERM insert_flow LIMITING IP_DST 10.1.0.0 MASK 255.255.0.0 }
ASSERT sensor <= Bound
`

// e2eApp adapts a closure into an isolation.App.
type e2eApp struct {
	name string
	init func(isolation.API) error
}

func (a *e2eApp) Name() string                 { return a.name }
func (a *e2eApp) Init(api isolation.API) error { return a.init(api) }

// TestMarketEndToEnd drives the full acceptance scenario on a real
// netsim network and shield runtime:
//
//  1. a tampered package and an unknown-vendor package are rejected
//     before reconciliation ever runs;
//  2. a valid release installs with its reconciled (repaired) permission
//     set enforced by the permengine;
//  3. an upgrade that panics during probation auto-rolls back to the
//     prior release's permissions;
//
// and every step leaves correlated audit events.
func TestMarketEndToEnd(t *testing.T) {
	b, err := netsim.Linear(1)
	if err != nil {
		t.Fatal(err)
	}
	k := controller.New(b.Topo, nil)
	for _, sw := range b.Net.Switches() {
		ctrlSide, swSide := of.Pipe()
		if err := sw.Start(swSide); err != nil {
			t.Fatal(err)
		}
		if _, err := k.AcceptSwitch(ctrlSide); err != nil {
			t.Fatal(err)
		}
	}
	shield := isolation.NewShield(k, isolation.Config{
		KSDWorkers:     2,
		EventQueueSize: 64,
		RestartBackoff: time.Millisecond,
		PanicLimit:     2,
		PanicWindow:    time.Minute,
	})
	t.Cleanup(func() {
		shield.Stop()
		k.Stop()
		b.Net.Stop()
	})

	pub, priv := genKey(t)
	reg := NewRegistry()
	if err := reg.TrustVendor("acme", pub); err != nil {
		t.Fatal(err)
	}
	m, err := New(reg, shield, Config{
		PolicySrc:     e2ePolicy,
		Probation:     10 * time.Second,
		ProbationPoll: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)

	auditStart := audit.Default().LastSeq()

	// --- 1. Provenance gate: tampering and unknown vendors stop the
	// pipeline before reconciliation.
	tampered := Sign(Release{Name: "sensor", Vendor: "acme", Version: "1.0.0",
		Manifest: "PERM read_statistics"}, priv)
	tampered.Manifest = "PERM read_statistics\nPERM process_runtime"
	if _, err := reg.Submit(tampered); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("tampered submit err = %v, want ErrBadSignature", err)
	}
	_, roguePriv := genKey(t)
	rogue := Sign(Release{Name: "sensor", Vendor: "nobody", Version: "1.0.0",
		Manifest: "PERM read_statistics"}, roguePriv)
	if _, err := reg.Submit(rogue); !errors.Is(err, ErrUnknownVendor) {
		t.Fatalf("rogue submit err = %v, want ErrUnknownVendor", err)
	}
	if m.Cache().Len() != 0 {
		t.Fatal("rejected packages reached the reconciliation cache")
	}

	// --- 2. Valid release: over-broad insert_flow (10/8) is repaired to
	// the policy boundary (10.1/16), signed off, and enforced.
	v1 := Sign(Release{Name: "sensor", Vendor: "acme", Version: "1.0.0",
		Manifest: "PERM pkt_in_event\nPERM read_statistics\nPERM insert_flow LIMITING IP_DST 10.0.0.0 MASK 255.0.0.0"}, priv)
	d1, err := reg.Submit(v1)
	if err != nil {
		t.Fatal(err)
	}
	ires, err := m.Install(d1)
	if err != nil {
		t.Fatal(err)
	}
	if ires.Verdict != VerdictRepaired || ires.Status != StatusPending {
		t.Fatalf("install result = %+v", ires)
	}
	ares, err := m.Approve("sensor")
	if err != nil {
		t.Fatal(err)
	}
	if ares.Status != StatusActive {
		t.Fatalf("approve status = %q", ares.Status)
	}

	// Launch the app under the shield; its handler panics on packet-in
	// once the bomb is armed (to misbehave during probation later).
	var bomb atomic.Bool
	var api isolation.API
	sensor := &e2eApp{name: "sensor", init: func(a isolation.API) error {
		api = a
		return a.Subscribe(controller.EventPacketIn, func(controller.Event) {
			if bomb.Load() {
				panic("sensor v2 regression")
			}
		})
	}}
	if err := shield.Launch(sensor); err != nil {
		t.Fatal(err)
	}

	// Inside the repaired boundary: allowed.
	okSpec := controller.FlowSpec{
		Match:    of.NewMatch().Set(of.FieldIPDst, uint64(of.IPv4FromOctets(10, 1, 3, 4))),
		Priority: 10,
		Actions:  []of.Action{of.Output(1)},
	}
	if err := api.InsertFlow(1, okSpec); err != nil {
		t.Fatalf("in-boundary insert denied: %v", err)
	}
	// Inside the requested 10/8 but outside the repaired 10.1/16: the
	// permengine must enforce the repaired set, not the request.
	badSpec := okSpec
	badSpec.Match = of.NewMatch().Set(of.FieldIPDst, uint64(of.IPv4FromOctets(10, 2, 3, 4)))
	var denied *permengine.DeniedError
	if err := api.InsertFlow(1, badSpec); !errors.As(err, &denied) {
		t.Fatalf("out-of-boundary insert err = %v, want DeniedError", err)
	}

	// --- 3. Upgrade enters probation, panics, and auto-rolls back.
	v2 := Sign(Release{Name: "sensor", Vendor: "acme", Version: "2.0.0",
		Manifest: "PERM pkt_in_event\nPERM insert_flow LIMITING IP_DST 10.1.0.0 MASK 255.255.0.0"}, priv)
	d2, err := reg.Submit(v2)
	if err != nil {
		t.Fatal(err)
	}
	ures, err := m.Upgrade(d2)
	if err != nil {
		t.Fatal(err)
	}
	if ures.Verdict != VerdictApproved || ures.Status != StatusProbation {
		t.Fatalf("upgrade result = %+v", ures)
	}
	// v2 dropped read_statistics; the shield now enforces the v2 set.
	if set, ok := m.ActivePermissions("sensor"); !ok || set.Has(core.TokenReadStatistics) {
		t.Fatalf("v2 active permissions = %v", set)
	}

	// The upgraded app misbehaves: packet-ins now panic it until the
	// supervisor quarantines, which the probation monitor catches.
	bomb.Store(true)
	h := b.Hosts[0]
	i := 0
	deadline := time.Now().Add(5 * time.Second)
	for {
		i++
		h.Send(of.NewARPRequest(h.MAC(), h.IP(), of.IPv4(i)))
		if s, _ := m.Status("sensor"); s.Status == StatusActive && s.Version == "1.0.0" {
			break
		}
		if time.Now().After(deadline) {
			s, _ := m.Status("sensor")
			hlth, _ := shield.AppHealth("sensor")
			t.Fatalf("no rollback: market=%+v health=%v", s, hlth)
		}
		time.Sleep(time.Millisecond)
	}
	// The rollback restored v1's repaired permission set.
	set, ok := m.ActivePermissions("sensor")
	if !ok || !set.Has(core.TokenReadStatistics) {
		t.Fatalf("rolled-back permissions = %v", set)
	}

	// --- Audit trail: every lifecycle step is present and the upgrade
	// and its rollback share one correlation ID.
	audit.Default().DrainNow()
	evs := audit.Default().Query(audit.Filter{App: "sensor", Kind: audit.KindMarket, AfterSeq: auditStart})
	byOp := make(map[string][]audit.Event)
	for _, e := range evs {
		byOp[e.Op] = append(byOp[e.Op], e)
	}
	for _, op := range []string{"submit", "install", "approve", "upgrade", "rollback"} {
		if len(byOp[op]) == 0 {
			t.Errorf("no audit event for op %q (have %v)", op, opsOf(evs))
		}
	}
	if len(byOp["upgrade"]) > 0 && len(byOp["rollback"]) > 0 {
		if byOp["upgrade"][len(byOp["upgrade"])-1].Corr != byOp["rollback"][0].Corr {
			t.Error("upgrade and rollback do not share a correlation ID")
		}
	}
	// The provenance rejections were audited too.
	rejected := audit.Default().Query(audit.Filter{Kind: audit.KindMarket, Verdict: audit.VerdictReject, AfterSeq: auditStart})
	if len(rejected) < 2 {
		t.Errorf("provenance rejections audited = %d, want >= 2", len(rejected))
	}
}

func opsOf(evs []audit.Event) []string {
	var out []string
	for _, e := range evs {
		out = append(out, e.Op)
	}
	return out
}
