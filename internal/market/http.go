package market

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"sdnshield/internal/jobs"
	"sdnshield/internal/obs"
	"sdnshield/internal/obs/audit"
	"sdnshield/internal/obs/span"
)

// ErrBadRequest classifies malformed client input (unparseable digests,
// missing query parameters) so writeError maps it to 400 instead of a
// bare 500.
var ErrBadRequest = errors.New("market: bad request")

// MountHTTP registers the market's administrative surface on the obs
// introspection endpoint (obs handlers built after this call include
// the routes):
//
//	GET  /market/apps            app states, releases, verdicts
//	POST /market/install         body: signed release package JSON, or
//	                             {"digest": "..."} for a stored release
//	POST /market/approve         body: {"app": "..."}
//	POST /market/upgrade         body: package JSON or {"digest": "..."}
//	POST /market/revoke          body: {"app": "..."}
//	POST /market/recompute       body: {"app": "..."} ("" sweeps all)
//	GET  /market/diff?app=NAME[&from=DIGEST&to=DIGEST]
//	GET  /market/jobs            queue stats + recent jobs
//	GET  /market/jobs/<id>       one job's state, result, error
//	GET  /market/log?after=N     release log suffix (replication feed)
//	GET  /market/release?digest=D  one signed package by content address
//	GET  /market/keys            trusted vendor keys, hex
//	GET  /market/digests         sorted digest set + root (anti-entropy)
//	GET  /market/lease           leader lease view (404 if none)
//
// install and upgrade accept the full package (submit + pipeline in one
// round trip), so a vendor portal can POST the exact artifact it
// distributes; provenance is re-checked server-side. A digest-only body
// selects a release already in the registry (e.g. loaded from the
// on-disk store), which is the administrator's usual path.
//
// With a job manager attached (AttachJobs), install/upgrade/recompute
// stop running the pipeline inline: they enqueue durably and answer 202
// Accepted with the job ID to poll at /market/jobs/<id>. A full queue
// answers 429. Without a manager the old synchronous behavior stands.
func MountHTTP(m *Market) {
	for pattern, h := range Routes(m) {
		obs.RegisterHandler(pattern, h)
	}
}

// Routes builds the market's administrative surface as a pattern →
// handler map — the same routes MountHTTP registers globally, but
// reusable by multi-tenant managers that serve one market per tenant
// under a /t/<tenant> prefix. Handlers parse their own r.URL.Path with
// the /market/... prefix intact, so a scoped dispatcher must strip only
// the tenant prefix.
func Routes(m *Market) map[string]http.Handler {
	return map[string]http.Handler{
		"/market/apps": http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, http.StatusOK, m.Snapshot())
		}),
		"/market/install": handlePackage(m, m.InstallTraced, QueueInstall),
		"/market/upgrade": handlePackage(m, m.UpgradeTraced, QueueUpgrade),
		"/market/approve": handleApp(m, func(app string) (interface{}, error) {
			return m.Approve(app)
		}),
		"/market/revoke": handleApp(m, func(app string) (interface{}, error) {
			if err := m.Revoke(app); err != nil {
				return nil, err
			}
			snap, _ := m.Status(app)
			return snap, nil
		}),
		"/market/recompute": handleRecompute(m),
		"/market/diff":      handleDiff(m),
		"/market/jobs":      handleJobsIndex(m),
		"/market/jobs/":     handleJobByID(m),
		"/market/log":       handleLog(m),
		"/market/release":   handleRelease(m),
		"/market/keys":      handleKeys(m),
		"/market/digests":   handleDigests(m),
		"/market/lease":     handleLease(m),
	}
}

// MountSyncHTTP registers a follower's sync introspection:
//
//	GET /market/sync    cumulative pull/reject/round counters
func MountSyncHTTP(s *Syncer) {
	obs.RegisterHandler("/market/sync", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	}))
}

// jobAccepted is the 202 body for an enqueued pipeline run.
type jobAccepted struct {
	JobID  uint64 `json:"job_id"`
	Queue  string `json:"queue"`
	Digest string `json:"digest,omitempty"`
	App    string `json:"app,omitempty"`
	Corr   uint64 `json:"corr"`
	Poll   string `json:"poll"`
	Trace  string `json:"trace,omitempty"`
}

// traceFrom establishes the operation identity of one ingress request.
// An X-Sdnshield-Trace header continues the caller's trace — corr is
// the caller's trace ID and the ingress span nests under the caller's
// span — otherwise a fresh corr is minted here and a root span opened.
// sc is what everything downstream (submit audit events, job payloads,
// pipeline stages) nests under; done seals the ingress span when the
// response is written.
func traceFrom(r *http.Request, op string) (corr uint64, sc span.Context, done func()) {
	if pc, ok := span.Parse(r.Header.Get(span.Header)); ok {
		sp := span.Start(pc, op)
		if c := sp.Context(); c.Valid() {
			return pc.TraceID, c, sp.End
		}
		return pc.TraceID, pc, func() {}
	}
	corr = audit.NextCorr()
	root := span.Root(corr, op)
	if c := root.Context(); c.Valid() {
		return corr, c, root.End
	}
	return corr, span.Context{}, func() {}
}

// tracePath renders the /trace link for a corr so 202 bodies can point
// the poller at the operation's trace directly.
func tracePath(corr uint64) string { return fmt.Sprintf("/trace/%d", corr) }

// handlePackage serves install/upgrade: decode a signed package, submit
// it through the provenance gate, then run the pipeline step — inline,
// or as an enqueued job when a manager is attached. The whole request
// runs under one trace: submission audit events, the enqueue, the
// worker-side pipeline and activation all carry the corr minted (or
// continued) here.
func handlePackage(m *Market, step func(Digest, OpTrace) (*InstallResult, error), queue string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "POST a signed release package"})
			return
		}
		var req struct {
			SignedRelease
			Digest string `json:"digest"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad package JSON: " + err.Error()})
			return
		}
		corr, sc, done := traceFrom(r, "http:"+queue)
		defer done()
		var digest Digest
		if req.Digest != "" {
			// Digest-only body: select a release already in the registry.
			d, err := ParseDigest(req.Digest)
			if err != nil {
				writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
				return
			}
			if _, err := m.Registry().Release(d); err != nil {
				writeError(w, err)
				return
			}
			digest = d
		} else {
			d, err := m.Registry().SubmitTraced(&req.SignedRelease, corr)
			if err != nil {
				writeError(w, err)
				return
			}
			digest = d
		}
		if m.Jobs() != nil {
			id, err := m.SubmitJob(queue, JobRequest{Digest: digest.String()}, corr, sc)
			if err != nil {
				writeError(w, err)
				return
			}
			writeJSON(w, http.StatusAccepted, jobAccepted{
				JobID: id, Queue: queue, Digest: digest.String(), Corr: corr,
				Poll: fmt.Sprintf("/market/jobs/%d", id), Trace: tracePath(corr),
			})
			return
		}
		result, err := step(digest, OpTrace{Corr: corr, Span: sc})
		if err != nil && result == nil {
			writeError(w, err)
			return
		}
		if err != nil {
			// A rejected verdict still carries a useful result body.
			writeJSON(w, http.StatusConflict, result)
			return
		}
		writeJSON(w, http.StatusOK, result)
	})
}

// handleApp serves approve/revoke: decode {"app": "..."} and apply.
func handleApp(m *Market, step func(app string) (interface{}, error)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": `POST {"app": "..."}`})
			return
		}
		var req struct {
			App string `json:"app"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.App == "" {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": `body must be {"app": "..."}`})
			return
		}
		out, err := step(req.App)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, out)
	})
}

// handleRecompute serves verdict recomputation: enqueued when the job
// spine is attached, inline otherwise. The app field is optional; empty
// sweeps every stored release.
func handleRecompute(m *Market) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": `POST {"app": "..."} ("" for all)`})
			return
		}
		var req struct {
			App string `json:"app"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad request JSON: " + err.Error()})
			return
		}
		if m.Jobs() != nil {
			corr, sc, done := traceFrom(r, "http:"+QueueRecompute)
			defer done()
			id, err := m.SubmitJob(QueueRecompute, JobRequest{App: req.App}, corr, sc)
			if err != nil {
				writeError(w, err)
				return
			}
			writeJSON(w, http.StatusAccepted, jobAccepted{
				JobID: id, Queue: QueueRecompute, App: req.App, Corr: corr,
				Poll: fmt.Sprintf("/market/jobs/%d", id), Trace: tracePath(corr),
			})
			return
		}
		n, err := m.Recompute(req.App)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]int{"recomputed": n})
	})
}

func handleDiff(m *Market) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		app := r.URL.Query().Get("app")
		fromS, toS := r.URL.Query().Get("from"), r.URL.Query().Get("to")
		var (
			report  string
			entries []DiffEntry
			err     error
		)
		switch {
		case fromS != "" && toS != "":
			var from, to Digest
			if from, err = ParseDigest(fromS); err == nil {
				if to, err = ParseDigest(toS); err == nil {
					report, entries, err = m.DiffReleases(from, to)
				} else {
					err = fmt.Errorf("%w: %v", ErrBadRequest, err)
				}
			} else {
				err = fmt.Errorf("%w: %v", ErrBadRequest, err)
			}
		case app != "":
			report, entries, err = m.DiffLatest(app)
		default:
			err = fmt.Errorf("%w: need ?app=NAME or ?from=DIGEST&to=DIGEST", ErrBadRequest)
		}
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]interface{}{
			"report":  report,
			"entries": entries,
		})
	})
}

// handleJobsIndex serves the queue dashboard: per-queue stats plus the
// most recent jobs.
func handleJobsIndex(m *Market) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		jm := m.Jobs()
		if jm == nil {
			writeError(w, ErrNoJobs)
			return
		}
		writeJSON(w, http.StatusOK, map[string]interface{}{
			"queues":         jm.Stats(),
			"recent":         jm.Recent(50),
			"dead_by_tenant": jm.DeadByTenant(),
		})
	})
}

// handleJobByID serves GET /market/jobs/<id> (poll) and POST
// /market/jobs/<id>/requeue (resurrect a dead-letter job).
func handleJobByID(m *Market) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		jm := m.Jobs()
		if jm == nil {
			writeError(w, ErrNoJobs)
			return
		}
		rest := strings.TrimPrefix(r.URL.Path, "/market/jobs/")
		idS, action, _ := strings.Cut(rest, "/")
		id, err := strconv.ParseUint(idS, 10, 64)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("bad job ID %q", idS)})
			return
		}
		switch {
		case action == "" && r.Method == http.MethodGet:
			snap, ok := jm.Status(id)
			if !ok {
				writeJSON(w, http.StatusNotFound, map[string]string{"error": fmt.Sprintf("unknown job %d (completed jobs are retained up to a bound)", id)})
				return
			}
			writeJSON(w, http.StatusOK, snap)
		case action == "requeue" && r.Method == http.MethodPost:
			if err := jm.Requeue(id); err != nil {
				writeError(w, err)
				return
			}
			snap, _ := jm.Status(id)
			writeJSON(w, http.StatusOK, snap)
		default:
			writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "GET /market/jobs/<id> or POST /market/jobs/<id>/requeue"})
		}
	})
}

// handleLog serves the release-log suffix after ?after=N — the
// replication feed. Side-effect free: serving reads must not renew the
// lease, or any poller would keep a dead leader's lease alive forever.
func handleLog(m *Market) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// A syncing follower sends its trace context; record the serve
		// side so a cross-node pull shows up on both nodes' collectors.
		if pc, ok := span.Parse(r.Header.Get(span.Header)); ok {
			sp := span.Start(pc, "serve:log")
			defer sp.End()
		}
		var after uint64
		if s := r.URL.Query().Get("after"); s != "" {
			v, err := strconv.ParseUint(s, 10, 64)
			if err != nil {
				writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("bad after=%q", s)})
				return
			}
			after = v
		}
		max := 0
		if s := r.URL.Query().Get("max"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v < 0 {
				writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("bad max=%q", s)})
				return
			}
			max = v
		}
		entries := m.Registry().LogAfter(after, max)
		if entries == nil {
			entries = []LogEntry{}
		}
		writeJSON(w, http.StatusOK, map[string]interface{}{
			"last_seq": m.Registry().LastSeq(),
			"entries":  entries,
		})
	})
}

// handleRelease serves one signed package by content address.
func handleRelease(m *Market) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if pc, ok := span.Parse(r.Header.Get(span.Header)); ok {
			sp := span.Start(pc, "serve:release")
			defer sp.End()
		}
		dS := r.URL.Query().Get("digest")
		if dS == "" {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "need ?digest=DIGEST"})
			return
		}
		d, err := ParseDigest(dS)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		sr, err := m.Registry().Release(d)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, sr)
	})
}

// handleKeys serves the trusted vendor key set, hex-encoded — what a
// replica imports with TrustUpstreamKeys.
func handleKeys(m *Market) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reg := m.Registry()
		out := make(map[string]string)
		for _, v := range reg.Vendors() {
			if pub, ok := reg.VendorKey(v); ok {
				out[v] = hex.EncodeToString(pub)
			}
		}
		writeJSON(w, http.StatusOK, out)
	})
}

// handleDigests serves the sorted digest set and its root — one GET
// tells a federating peer whether anything diverged.
func handleDigests(m *Market) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reg := m.Registry()
		digests := reg.Digests()
		if digests == nil {
			digests = []string{}
		}
		writeJSON(w, http.StatusOK, map[string]interface{}{
			"root":    reg.RootDigest(),
			"digests": digests,
		})
	})
}

// handleLease serves the leader lease view without renewing it (renewal
// is the leader's own heartbeat, not a read side effect); a market
// without one answers 404 so followers know the feed is unguarded.
func handleLease(m *Market) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		l := m.Lease()
		if l == nil {
			writeJSON(w, http.StatusNotFound, map[string]string{"error": "no leader lease configured"})
			return
		}
		writeJSON(w, http.StatusOK, l.View())
	})
}

func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrUnknownVendor), errors.Is(err, ErrBadSignature):
		status = http.StatusForbidden
	case errors.Is(err, ErrUnknownRelease), errors.Is(err, ErrNotInstalled),
		errors.Is(err, ErrNothingPending), errors.Is(err, jobs.ErrUnknownJob):
		status = http.StatusNotFound
	case errors.Is(err, ErrDuplicateRelease), errors.Is(err, ErrAlreadyInstalled),
		errors.Is(err, ErrNotAnUpgrade), errors.Is(err, ErrRejected):
		status = http.StatusConflict
	case errors.Is(err, ErrBadRequest):
		status = http.StatusBadRequest
	case errors.Is(err, jobs.ErrQueueFull):
		status = http.StatusTooManyRequests
	case errors.Is(err, ErrNoJobs), errors.Is(err, jobs.ErrClosed):
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
