package market

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"sdnshield/internal/obs"
)

// MountHTTP registers the market's administrative surface on the obs
// introspection endpoint (obs handlers built after this call include
// the routes):
//
//	GET  /market/apps            app states, releases, verdicts
//	POST /market/install         body: signed release package JSON, or
//	                             {"digest": "..."} for a stored release
//	POST /market/approve         body: {"app": "..."}
//	POST /market/upgrade         body: package JSON or {"digest": "..."}
//	POST /market/revoke          body: {"app": "..."}
//	GET  /market/diff?app=NAME[&from=DIGEST&to=DIGEST]
//
// install and upgrade accept the full package (submit + pipeline in one
// round trip), so a vendor portal can POST the exact artifact it
// distributes; provenance is re-checked server-side. A digest-only body
// selects a release already in the registry (e.g. loaded from the
// on-disk store), which is the administrator's usual path.
func MountHTTP(m *Market) {
	obs.RegisterHandler("/market/apps", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.Snapshot())
	}))
	obs.RegisterHandler("/market/install", handlePackage(m, m.Install))
	obs.RegisterHandler("/market/upgrade", handlePackage(m, m.Upgrade))
	obs.RegisterHandler("/market/approve", handleApp(m, func(app string) (interface{}, error) {
		return m.Approve(app)
	}))
	obs.RegisterHandler("/market/revoke", handleApp(m, func(app string) (interface{}, error) {
		if err := m.Revoke(app); err != nil {
			return nil, err
		}
		snap, _ := m.Status(app)
		return snap, nil
	}))
	obs.RegisterHandler("/market/diff", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		app := r.URL.Query().Get("app")
		fromS, toS := r.URL.Query().Get("from"), r.URL.Query().Get("to")
		var (
			report  string
			entries []DiffEntry
			err     error
		)
		switch {
		case fromS != "" && toS != "":
			var from, to Digest
			if from, err = ParseDigest(fromS); err == nil {
				if to, err = ParseDigest(toS); err == nil {
					report, entries, err = m.DiffReleases(from, to)
				}
			}
		case app != "":
			report, entries, err = m.DiffLatest(app)
		default:
			err = fmt.Errorf("market: need ?app=NAME or ?from=DIGEST&to=DIGEST")
		}
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]interface{}{
			"report":  report,
			"entries": entries,
		})
	}))
}

// handlePackage serves install/upgrade: decode a signed package, submit
// it through the provenance gate, then run the pipeline step.
func handlePackage(m *Market, step func(Digest) (*InstallResult, error)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "POST a signed release package"})
			return
		}
		var req struct {
			SignedRelease
			Digest string `json:"digest"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad package JSON: " + err.Error()})
			return
		}
		var digest Digest
		if req.Digest != "" {
			// Digest-only body: select a release already in the registry.
			d, err := ParseDigest(req.Digest)
			if err != nil {
				writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
				return
			}
			if _, err := m.Registry().Release(d); err != nil {
				writeError(w, err)
				return
			}
			digest = d
		} else {
			d, err := m.Registry().Submit(&req.SignedRelease)
			if err != nil {
				writeError(w, err)
				return
			}
			digest = d
		}
		result, err := step(digest)
		if err != nil && result == nil {
			writeError(w, err)
			return
		}
		if err != nil {
			// A rejected verdict still carries a useful result body.
			writeJSON(w, http.StatusConflict, result)
			return
		}
		writeJSON(w, http.StatusOK, result)
	})
}

// handleApp serves approve/revoke: decode {"app": "..."} and apply.
func handleApp(m *Market, step func(app string) (interface{}, error)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": `POST {"app": "..."}`})
			return
		}
		var req struct {
			App string `json:"app"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.App == "" {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": `body must be {"app": "..."}`})
			return
		}
		out, err := step(req.App)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, out)
	})
}

func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrUnknownVendor), errors.Is(err, ErrBadSignature):
		status = http.StatusForbidden
	case errors.Is(err, ErrUnknownRelease), errors.Is(err, ErrNotInstalled), errors.Is(err, ErrNothingPending):
		status = http.StatusNotFound
	case errors.Is(err, ErrDuplicateRelease), errors.Is(err, ErrAlreadyInstalled),
		errors.Is(err, ErrNotAnUpgrade), errors.Is(err, ErrRejected):
		status = http.StatusConflict
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
