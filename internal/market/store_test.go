package market

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestKeygenAndLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	pub, err := Keygen(dir, "acme")
	if err != nil {
		t.Fatal(err)
	}
	gotPub, err := LoadPublicKey(filepath.Join(dir, "keys", "acme.pub"))
	if err != nil {
		t.Fatal(err)
	}
	if string(gotPub) != string(pub) {
		t.Fatal("public key did not round-trip")
	}
	priv, err := LoadPrivateKey(filepath.Join(dir, "keys", "acme.key"))
	if err != nil {
		t.Fatal(err)
	}
	sr := Sign(Release{Name: "mon", Vendor: "acme", Version: "1.0.0", Manifest: "PERM read_statistics"}, priv)
	if !sr.VerifySignature(pub) {
		t.Fatal("keygen pair does not sign/verify")
	}
	// Existing keys are never overwritten.
	if _, err := Keygen(dir, "acme"); err == nil {
		t.Fatal("Keygen overwrote an existing key")
	}
	// Hostile vendor names are refused before touching the filesystem.
	if _, err := Keygen(dir, "../evil"); err == nil {
		t.Fatal("path-traversal vendor name accepted")
	}
}

func TestSaveAndLoadDir(t *testing.T) {
	dir := t.TempDir()
	if _, err := Keygen(dir, "acme"); err != nil {
		t.Fatal(err)
	}
	priv, err := LoadPrivateKey(filepath.Join(dir, "keys", "acme.key"))
	if err != nil {
		t.Fatal(err)
	}
	good := Sign(Release{Name: "mon", Vendor: "acme", Version: "1.0.0", Manifest: "PERM read_statistics"}, priv)
	if _, err := SaveRelease(dir, good); err != nil {
		t.Fatal(err)
	}

	// A tampered file: saved, then edited on disk.
	bad := Sign(Release{Name: "evil", Vendor: "acme", Version: "1.0.0", Manifest: "PERM read_statistics"}, priv)
	badPath, err := SaveRelease(dir, bad)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(badPath)
	if err != nil {
		t.Fatal(err)
	}
	edited := strings.Replace(string(data), "PERM read_statistics", "PERM process_runtime", 1)
	if err := os.WriteFile(badPath, []byte(edited), 0o644); err != nil {
		t.Fatal(err)
	}

	reg := NewRegistry()
	loaded, problems, err := LoadDir(dir, reg)
	if err != nil {
		t.Fatal(err)
	}
	if loaded != 1 {
		t.Fatalf("loaded = %d, want 1 (good release only)", loaded)
	}
	if len(problems) != 1 || !strings.Contains(problems[0], "digest") {
		t.Fatalf("problems = %v, want one digest mismatch", problems)
	}
	if _, err := reg.Release(good.Digest()); err != nil {
		t.Fatalf("good release not loaded: %v", err)
	}
	if len(reg.Releases("evil")) != 0 {
		t.Fatal("tampered release was loaded")
	}
}

func TestLoadDirMissingIsEmpty(t *testing.T) {
	reg := NewRegistry()
	loaded, problems, err := LoadDir(filepath.Join(t.TempDir(), "nope"), reg)
	if err != nil || loaded != 0 || len(problems) != 0 {
		t.Fatalf("loaded=%d problems=%v err=%v", loaded, problems, err)
	}
}
