package market

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"sdnshield/internal/core"
	"sdnshield/internal/isolation"
	"sdnshield/internal/jobs"
	"sdnshield/internal/obs/audit"
	"sdnshield/internal/obs/span"
	"sdnshield/internal/permlang"
	"sdnshield/internal/policylang"
	"sdnshield/internal/reconcile"
)

// OpTrace is the identity of the operation driving a pipeline run: the
// audit correlation ID and the span context its stages nest under. The
// zero OpTrace means "standalone call" — the pipeline mints a fresh
// corr and opens its own root span, so direct API callers and the
// HTTP/job paths produce the same shaped trace.
type OpTrace struct {
	Corr uint64
	Span span.Context
}

// fill resolves a zero OpTrace into a live identity for the named
// operation; the returned finish seals the root span it opened, if any.
func (ot OpTrace) fill(op string) (OpTrace, func()) {
	if ot.Corr == 0 {
		ot.Corr = audit.NextCorr()
	}
	if ot.Span.Valid() {
		return ot, func() {}
	}
	root := span.Root(ot.Corr, op)
	ot.Span = root.Context()
	return ot, root.End
}

// Runtime is the slice of the shielded runtime the market drives:
// atomic permission activation and app-health probing for the probation
// monitor. *isolation.Shield satisfies it; tests substitute fakes.
type Runtime interface {
	SetPermissions(app string, set *core.Set)
	AppHealth(app string) (isolation.Health, bool)
}

// BudgetRuntime is optionally implemented by runtimes that enforce
// manifest resource budgets (BUDGET statements) as per-app soft
// quotas. *isolation.Shield implements it; activation, rollback and
// revocation thread the active release's budget through it whenever
// the configured Runtime supports it.
type BudgetRuntime interface {
	SetBudget(app string, b core.Budget)
}

// ProvenanceRuntime is optionally implemented by runtimes whose
// permission engine records reconciliation provenance: the repair notes
// attached to the active release, so /explain can report which repair
// introduced a denial's deciding term. *isolation.Shield implements it.
type ProvenanceRuntime interface {
	SetProvenance(app string, notes []string)
}

// Config tunes a Market.
type Config struct {
	// PolicySrc is the administrator's site security policy source. Its
	// digest is half of every verdict-cache key.
	PolicySrc string
	// Probation is how long an upgraded release runs under watch before
	// its permissions are committed; if the app panics or is quarantined
	// inside the window, the market rolls back to the previous release's
	// permissions. Default 10s.
	Probation time.Duration
	// ProbationPoll is the health-probe interval inside the window.
	// Default Probation/20 (min 1ms).
	ProbationPoll time.Duration
	// Cache, when non-nil, is a shared verdict cache. Several markets
	// (leader and followers, or a bench's cold/warm pair) can point at
	// one cache so a verdict computed anywhere is a hit everywhere the
	// policy digest matches. Nil builds a private cache.
	Cache *VerdictCache
	// Tenant, when set, stamps every audit event and enqueued job this
	// market emits with the owning tenant — the multi-tenant manager
	// runs one market per tenant and sets it at hydration.
	Tenant string
}

// Lifecycle errors.
var (
	// ErrNotInstalled reports an operation on an app with no installed
	// release.
	ErrNotInstalled = errors.New("market: app not installed")
	// ErrAlreadyInstalled reports Install on an app that already runs a
	// release (use Upgrade).
	ErrAlreadyInstalled = errors.New("market: app already installed (use upgrade)")
	// ErrNothingPending reports Approve with no verdict awaiting sign-off.
	ErrNothingPending = errors.New("market: nothing pending sign-off")
	// ErrNotAnUpgrade reports Upgrade to a version not newer than the
	// active release.
	ErrNotAnUpgrade = errors.New("market: version is not newer than the active release")
	// ErrRejected reports an install/upgrade whose reconciliation verdict
	// was rejection.
	ErrRejected = errors.New("market: release rejected by reconciliation")
)

// AppStatus is an installed app's lifecycle state.
type AppStatus string

// App lifecycle states.
const (
	// StatusPending: a verdict awaits administrator sign-off.
	StatusPending AppStatus = "pending sign-off"
	// StatusActive: the release's reconciled permissions are enforced.
	StatusActive AppStatus = "active"
	// StatusProbation: an upgrade is live but unconfirmed; a panic or
	// quarantine inside the window rolls back.
	StatusProbation AppStatus = "probation"
	// StatusRevoked: the administrator revoked the app; it runs with no
	// permissions.
	StatusRevoked AppStatus = "revoked"
)

// releaseRef is one activated (or activatable) release with its
// reconciled permission set.
type releaseRef struct {
	digest    Digest
	version   string
	vendor    string
	verdict   Verdict
	effective *core.Set
	// budget is the release's declared resource quota (BUDGET
	// statements in the manifest); zero when the manifest declares none.
	budget core.Budget
	// provenance renders the reconciliation violations/repairs that
	// shaped the effective set, for the runtime's /explain forensics.
	provenance []string
}

// appState is the market's view of one installed app.
type appState struct {
	name    string
	status  AppStatus
	active  *releaseRef // permissions currently enforced
	pending *releaseRef // verdict awaiting sign-off
	prev    *releaseRef // rollback target during probation
	// probationStop cancels the running probation monitor; nil outside
	// probation.
	probationStop chan struct{}
	// corr is the correlation ID of the in-flight lifecycle operation,
	// carried by every audit event the operation causes.
	corr uint64
}

// Market is the app-market lifecycle engine: it owns the registry, the
// site policy, the reconciliation engine and its verdict cache, and the
// install/upgrade/rollback state machine over a shielded runtime.
type Market struct {
	reg     *Registry
	runtime Runtime
	cfg     Config

	policy       *policylang.Policy
	policyDigest Digest
	engine       *reconcile.Engine
	cache        *VerdictCache

	mu      sync.Mutex
	apps    map[string]*appState
	wg      sync.WaitGroup
	closed  bool
	jobsMgr *jobs.Manager
	lease   *LeaderLease
}

// New builds a market over a registry and a shielded runtime. runtime
// may be nil for registry-only deployments (verdicts and diffs without
// activation). The policy source must parse; an empty source means "no
// policy" (every manifest reconciles clean).
func New(reg *Registry, runtime Runtime, cfg Config) (*Market, error) {
	if cfg.Probation <= 0 {
		cfg.Probation = 10 * time.Second
	}
	if cfg.ProbationPoll <= 0 {
		cfg.ProbationPoll = cfg.Probation / 20
		if cfg.ProbationPoll < time.Millisecond {
			cfg.ProbationPoll = time.Millisecond
		}
	}
	cache := cfg.Cache
	if cache == nil {
		cache = NewVerdictCache()
	}
	m := &Market{
		reg:          reg,
		runtime:      runtime,
		cfg:          cfg,
		engine:       reconcile.New(),
		cache:        cache,
		policyDigest: PolicyDigest(cfg.PolicySrc),
		apps:         make(map[string]*appState),
	}
	if cfg.PolicySrc != "" {
		p, err := policylang.Parse(cfg.PolicySrc)
		if err != nil {
			return nil, fmt.Errorf("market: site policy does not parse: %w", err)
		}
		m.policy = p
	}
	return m, nil
}

// Registry returns the market's release registry.
func (m *Market) Registry() *Registry { return m.reg }

// Cache returns the market's verdict cache.
func (m *Market) Cache() *VerdictCache { return m.cache }

// Close stops every probation monitor and waits for them to exit.
// Releases in probation at Close time stay active uncommitted.
func (m *Market) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	for _, st := range m.apps {
		if st.probationStop != nil {
			close(st.probationStop)
			st.probationStop = nil
		}
	}
	m.mu.Unlock()
	m.wg.Wait()
}

// InstallResult reports one install/upgrade pipeline run.
type InstallResult struct {
	App     string `json:"app"`
	Vendor  string `json:"vendor"`
	Version string `json:"version"`
	Digest  string `json:"digest"`
	// Verdict is the reconciliation outcome (approved / repaired /
	// rejected).
	Verdict Verdict `json:"verdict"`
	// Status is the app's lifecycle state after the run.
	Status AppStatus `json:"status"`
	// CacheHit reports whether the verdict came from the cache (no
	// Algorithm 1 run).
	CacheHit bool `json:"cache_hit"`
	// Violations lists reconciliation findings, empty when approved.
	Violations []string `json:"violations,omitempty"`
	// Effective renders the reconciled permission set in canonical
	// (sorted) order.
	Effective string `json:"effective"`
	// Corr is the correlation ID tying the operation's audit events
	// together.
	Corr uint64 `json:"corr"`
}

// reconcileRelease drives one release through verify → parse → reconcile
// with the verdict cache in front of Algorithm 1.
func (m *Market) reconcileRelease(sr *SignedRelease) (cv *CachedVerdict, hit bool, err error) {
	return m.reconcileTraced(sr, span.Context{})
}

// reconcileTraced is reconcileRelease with per-stage spans and latency
// histograms: cache_hit on the short path; parse and reconcile on the
// miss path. One clock-read pair per stage feeds both the span and the
// stage histogram, so tracing adds no timing of its own.
func (m *Market) reconcileTraced(sr *SignedRelease, sc span.Context) (cv *CachedVerdict, hit bool, err error) {
	manifestDigest := sr.Digest()
	t := time.Now()
	if cv, ok := m.cache.Get(manifestDigest, m.policyDigest); ok {
		d := time.Since(t)
		observeStage("cache_hit", d)
		span.Add(sc, "stage:cache_hit", t, d)
		return cv, true, nil
	}
	manifest, err := permlang.Parse(sr.Manifest)
	d := time.Since(t)
	observeStage("parse", d)
	span.Add(sc, "stage:parse", t, d)
	if err != nil {
		return nil, false, fmt.Errorf("market: manifest does not parse: %w", err)
	}
	t = time.Now()
	res, err := m.engine.Reconcile(sr.Name, manifest, m.policy)
	d = time.Since(t)
	observeStage("reconcile", d)
	span.Add(sc, "stage:reconcile", t, d)
	if err != nil {
		return nil, false, err
	}
	verdict := classifyVerdict(res)
	cv = m.cache.Put(manifestDigest, m.policyDigest, verdict, res.Violations, res.Reconciled, res.Requested)
	return cv, false, nil
}

// classifyVerdict maps a reconciliation result to the market's
// three-way verdict: clean manifests are approved; repairs that leave a
// usable permission set await sign-off; an empty effective set or an
// unresolvable policy reference rejects the release.
func classifyVerdict(res *reconcile.Result) Verdict {
	if res.Clean {
		return VerdictApproved
	}
	for _, v := range res.Violations {
		if v.Kind == reconcile.ViolationUnknownReference {
			return VerdictRejected
		}
	}
	if res.Reconciled.Len() == 0 {
		return VerdictRejected
	}
	return VerdictRepaired
}

// Evaluate runs verify → parse → reconcile for a stored release without
// touching app state — the administrator's "what would this install do"
// query, also used by CLI reports. The verdict still lands in the cache,
// so a later Install of the same release is a hit.
func (m *Market) Evaluate(d Digest) (*InstallResult, error) {
	sr, err := m.reg.Release(d)
	if err != nil {
		return nil, err
	}
	cv, hit, err := m.reconcileRelease(sr)
	if err != nil {
		return nil, err
	}
	return m.buildResult(sr, cv, hit, 0), nil
}

// Recompute re-runs reconciliation for every stored release of app (all
// apps when "") with the verdict cache bypassed on the way in and
// refreshed on the way out — the recovery path after an engine fix or a
// cache wipe, run as a market.recompute job so a registry-wide sweep
// never blocks an HTTP request. Returns how many verdicts were rebuilt.
func (m *Market) Recompute(app string) (int, error) {
	apps := []string{app}
	if app == "" {
		apps = m.reg.Apps()
	}
	n := 0
	for _, a := range apps {
		for _, sr := range m.reg.Releases(a) {
			manifest, err := permlang.Parse(sr.Manifest)
			if err != nil {
				return n, fmt.Errorf("market: manifest of %s@%s does not parse: %w", sr.Name, sr.Version, err)
			}
			res, err := m.engine.Reconcile(sr.Name, manifest, m.policy)
			if err != nil {
				return n, err
			}
			m.cache.Put(sr.Digest(), m.policyDigest, classifyVerdict(res), res.Violations, res.Reconciled, res.Requested)
			n++
		}
	}
	if app != "" && n == 0 {
		return 0, fmt.Errorf("%w: app %q has no stored releases", ErrUnknownRelease, app)
	}
	return n, nil
}

// Install runs the install pipeline for a stored release: provenance
// re-check, reconciliation (through the verdict cache), then — for
// approved verdicts — atomic activation into the runtime. Repaired
// verdicts park as pending sign-off (Approve activates them); rejected
// verdicts return ErrRejected.
func (m *Market) Install(d Digest) (*InstallResult, error) {
	return m.InstallTraced(d, OpTrace{})
}

// InstallTraced is Install under a caller-supplied operation identity:
// the HTTP ingress and the job spine pass the corr they minted at the
// boundary (plus the span context to nest stages under), so the trace
// at /trace/<corr> and the audit trail share one ID end to end.
func (m *Market) InstallTraced(d Digest, ot OpTrace) (*InstallResult, error) {
	tVerify := time.Now()
	sr, err := m.reg.Release(d)
	dVerify := time.Since(tVerify)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	if st, ok := m.apps[sr.Name]; ok && st.active != nil && st.status != StatusRevoked {
		m.mu.Unlock()
		return nil, fmt.Errorf("%w: %s@%s is %s", ErrAlreadyInstalled, sr.Name, st.active.version, st.status)
	}
	m.mu.Unlock()

	ot, finish := ot.fill("market:install:" + sr.Name)
	defer finish()
	defer func(t0 time.Time) { mInstallSeconds.Observe(time.Since(t0)) }(tVerify)
	corr := ot.Corr
	observeStage("verify", dVerify)
	span.Add(ot.Span, "stage:verify", tVerify, dVerify)
	cv, hit, err := m.reconcileTraced(sr, ot.Span)
	if err != nil {
		return nil, err
	}
	result := m.buildResult(sr, cv, hit, corr)

	switch cv.Verdict {
	case VerdictRejected:
		m.emit("install", audit.VerdictReject, sr.Name, corr,
			fmt.Sprintf("release %s@%s rejected: %s", sr.Name, sr.Version, firstViolation(cv)))
		return result, fmt.Errorf("%w: %s@%s", ErrRejected, sr.Name, sr.Version)
	case VerdictRepaired:
		m.setPending(sr, cv, corr)
		result.Status = StatusPending
		m.emit("install", audit.VerdictViolation, sr.Name, corr,
			fmt.Sprintf("release %s@%s repaired, pending sign-off (%d violations)", sr.Name, sr.Version, len(cv.Violations)))
		return result, nil
	default: // approved
		tAct := time.Now()
		m.activate(sr.Name, refOf(sr, cv), corr, false)
		dAct := time.Since(tAct)
		observeStage("activate", dAct)
		span.Add(ot.Span, "stage:activate", tAct, dAct)
		result.Status = StatusActive
		countLifecycle("install")
		m.emit("install", audit.VerdictInstall, sr.Name, corr,
			fmt.Sprintf("release %s@%s approved and activated", sr.Name, sr.Version))
		return result, nil
	}
}

// Upgrade runs the install pipeline for a newer release of an installed
// app. Approved upgrades activate immediately but enter a probation
// window; repaired upgrades wait for sign-off first.
func (m *Market) Upgrade(d Digest) (*InstallResult, error) {
	return m.UpgradeTraced(d, OpTrace{})
}

// UpgradeTraced is Upgrade under a caller-supplied operation identity;
// see InstallTraced.
func (m *Market) UpgradeTraced(d Digest, ot OpTrace) (*InstallResult, error) {
	tVerify := time.Now()
	sr, err := m.reg.Release(d)
	dVerify := time.Since(tVerify)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	st, ok := m.apps[sr.Name]
	if !ok || st.active == nil {
		m.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrNotInstalled, sr.Name)
	}
	newV, err := ParseVersion(sr.Version)
	if err != nil {
		m.mu.Unlock()
		return nil, err
	}
	curV, _ := ParseVersion(st.active.version)
	if newV.Compare(curV) <= 0 {
		m.mu.Unlock()
		return nil, fmt.Errorf("%w: %s (active %s)", ErrNotAnUpgrade, sr.Version, st.active.version)
	}
	m.mu.Unlock()

	ot, finish := ot.fill("market:upgrade:" + sr.Name)
	defer finish()
	defer func(t0 time.Time) { mInstallSeconds.Observe(time.Since(t0)) }(tVerify)
	corr := ot.Corr
	observeStage("verify", dVerify)
	span.Add(ot.Span, "stage:verify", tVerify, dVerify)
	cv, hit, err := m.reconcileTraced(sr, ot.Span)
	if err != nil {
		return nil, err
	}
	result := m.buildResult(sr, cv, hit, corr)

	switch cv.Verdict {
	case VerdictRejected:
		m.emit("upgrade", audit.VerdictReject, sr.Name, corr,
			fmt.Sprintf("upgrade to %s@%s rejected: %s", sr.Name, sr.Version, firstViolation(cv)))
		return result, fmt.Errorf("%w: %s@%s", ErrRejected, sr.Name, sr.Version)
	case VerdictRepaired:
		m.setPending(sr, cv, corr)
		result.Status = StatusPending
		m.emit("upgrade", audit.VerdictViolation, sr.Name, corr,
			fmt.Sprintf("upgrade to %s@%s repaired, pending sign-off (%d violations)", sr.Name, sr.Version, len(cv.Violations)))
		return result, nil
	default: // approved
		tAct := time.Now()
		m.activate(sr.Name, refOf(sr, cv), corr, true)
		dAct := time.Since(tAct)
		observeStage("activate", dAct)
		span.Add(ot.Span, "stage:activate", tAct, dAct)
		result.Status = StatusProbation
		countLifecycle("upgrade")
		m.emit("upgrade", audit.VerdictUpgrade, sr.Name, corr,
			fmt.Sprintf("upgrade to %s@%s activated, probation %v", sr.Name, sr.Version, m.cfg.Probation))
		return result, nil
	}
}

// Approve signs off a pending repaired verdict, activating its
// (MEET-ed) effective permission set. An approval that replaces an
// already-active release behaves like an upgrade: it enters probation.
func (m *Market) Approve(app string) (*InstallResult, error) {
	m.mu.Lock()
	st, ok := m.apps[app]
	if !ok || st.pending == nil {
		m.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrNothingPending, app)
	}
	pending := st.pending
	isUpgrade := st.active != nil && st.status != StatusRevoked
	m.mu.Unlock()

	corr := audit.NextCorr()
	m.activate(app, pending, corr, isUpgrade)
	countLifecycle("approve")
	status := StatusActive
	if isUpgrade {
		status = StatusProbation
	}
	m.emit("approve", audit.VerdictApprove, app, corr,
		fmt.Sprintf("signed off %s@%s (%s); now %s", app, pending.version, pending.verdict, status))

	sr, err := m.reg.Release(pending.digest)
	if err != nil {
		return nil, err
	}
	cv, _, err := m.reconcileRelease(sr) // cache hit by construction
	if err != nil {
		return nil, err
	}
	result := m.buildResult(sr, cv, true, corr)
	result.Status = status
	return result, nil
}

// Revoke removes an app's permissions entirely (the paper's kill switch
// for a compromised release). The registry entry survives; a later
// Install may re-activate.
func (m *Market) Revoke(app string) error {
	m.mu.Lock()
	st, ok := m.apps[app]
	if !ok || st.active == nil {
		m.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNotInstalled, app)
	}
	if st.probationStop != nil {
		close(st.probationStop)
		st.probationStop = nil
	}
	st.status = StatusRevoked
	st.pending = nil
	st.prev = nil
	corr := audit.NextCorr()
	st.corr = corr
	m.mu.Unlock()

	if m.runtime != nil {
		m.runtime.SetPermissions(app, core.NewSet())
		m.pushBudget(app, core.Budget{})
		m.pushProvenance(app, nil)
	}
	countLifecycle("revoke")
	gActiveApps.Add(-1)
	m.emit("revoke", audit.VerdictRevoke, app, corr, "permissions revoked")
	return nil
}

// setPending parks a repaired verdict for sign-off.
func (m *Market) setPending(sr *SignedRelease, cv *CachedVerdict, corr uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.stateLocked(sr.Name)
	st.pending = refOf(sr, cv)
	st.corr = corr
	if st.active == nil {
		st.status = StatusPending
	}
}

// pushBudget threads a release's declared resource budget into the
// runtime when it supports quotas. A zero budget clears any quota.
func (m *Market) pushBudget(app string, b core.Budget) {
	if m.runtime == nil {
		return
	}
	if br, ok := m.runtime.(BudgetRuntime); ok {
		br.SetBudget(app, b)
	}
}

// pushProvenance threads the active release's reconciliation notes into
// the runtime when it records them. nil clears.
func (m *Market) pushProvenance(app string, notes []string) {
	if m.runtime == nil {
		return
	}
	if pr, ok := m.runtime.(ProvenanceRuntime); ok {
		pr.SetProvenance(app, notes)
	}
}

// activate installs a release's effective permissions atomically and,
// for upgrades, arms the probation monitor with the previous release as
// the rollback target.
func (m *Market) activate(app string, ref *releaseRef, corr uint64, probated bool) {
	m.mu.Lock()
	st := m.stateLocked(app)
	if st.probationStop != nil {
		// A new activation supersedes any in-flight probation; the old
		// monitor must not roll back over it.
		close(st.probationStop)
		st.probationStop = nil
		gProbations.Add(-1)
	}
	wasRunning := st.active != nil && st.status != StatusRevoked
	if probated && wasRunning {
		st.prev = st.active
	} else {
		st.prev = nil
	}
	st.active = ref
	st.pending = nil
	st.corr = corr
	if !wasRunning {
		gActiveApps.Add(1)
	}
	var stop chan struct{}
	if probated && st.prev != nil {
		st.status = StatusProbation
		stop = make(chan struct{})
		st.probationStop = stop
		gProbations.Add(1)
	} else {
		st.status = StatusActive
	}
	m.mu.Unlock()

	if m.runtime != nil {
		m.runtime.SetPermissions(app, ref.effective.Clone())
		m.pushBudget(app, ref.budget)
		m.pushProvenance(app, ref.provenance)
	}
	if stop != nil {
		m.wg.Add(1)
		go m.superviseProbation(app, ref, stop, corr)
	}
}

// superviseProbation watches an upgraded app through its window: a
// panic (Restarting) or quarantine rolls the permissions back to the
// previous release; surviving the window commits the upgrade.
func (m *Market) superviseProbation(app string, ref *releaseRef, stop chan struct{}, corr uint64) {
	defer m.wg.Done()
	deadline := time.NewTimer(m.cfg.Probation)
	defer deadline.Stop()
	tick := time.NewTicker(m.cfg.ProbationPoll)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-deadline.C:
			m.commitUpgrade(app, ref, stop, corr)
			return
		case <-tick.C:
			if m.runtime == nil {
				continue
			}
			h, ok := m.runtime.AppHealth(app)
			if !ok {
				continue // not launched yet; permissions alone can't fail probation
			}
			if h == isolation.Restarting || h == isolation.Quarantined {
				m.rollback(app, ref, stop, corr, h)
				return
			}
		}
	}
}

// commitUpgrade finalizes a probated upgrade after a healthy window.
func (m *Market) commitUpgrade(app string, ref *releaseRef, stop chan struct{}, corr uint64) {
	m.mu.Lock()
	st, ok := m.apps[app]
	if !ok || st.probationStop != stop {
		m.mu.Unlock()
		return // superseded
	}
	st.probationStop = nil
	st.prev = nil
	st.status = StatusActive
	m.mu.Unlock()
	gProbations.Add(-1)
	countLifecycle("commit")
	m.emit("commit", audit.VerdictApprove, app, corr,
		fmt.Sprintf("upgrade to %s@%s survived probation; committed", app, ref.version))
}

// rollback reverts a probated upgrade to the previous release's
// permissions.
func (m *Market) rollback(app string, ref *releaseRef, stop chan struct{}, corr uint64, h isolation.Health) {
	m.mu.Lock()
	st, ok := m.apps[app]
	if !ok || st.probationStop != stop || st.prev == nil {
		m.mu.Unlock()
		return // superseded
	}
	prev := st.prev
	st.probationStop = nil
	st.prev = nil
	st.active = prev
	st.status = StatusActive
	m.mu.Unlock()

	if m.runtime != nil {
		m.runtime.SetPermissions(app, prev.effective.Clone())
		m.pushBudget(app, prev.budget)
		m.pushProvenance(app, prev.provenance)
	}
	gProbations.Add(-1)
	countLifecycle("rollback")
	m.emit("rollback", audit.VerdictRollback, app, corr,
		fmt.Sprintf("app %s during probation of %s@%s; rolled back to %s", h, app, ref.version, prev.version))
}

func (m *Market) stateLocked(app string) *appState {
	st, ok := m.apps[app]
	if !ok {
		st = &appState{name: app}
		m.apps[app] = st
	}
	return st
}

func (m *Market) buildResult(sr *SignedRelease, cv *CachedVerdict, hit bool, corr uint64) *InstallResult {
	res := &InstallResult{
		App:       sr.Name,
		Vendor:    sr.Vendor,
		Version:   sr.Version,
		Digest:    sr.Digest().String(),
		Verdict:   cv.Verdict,
		CacheHit:  hit,
		Effective: cv.effective.SortedString(),
		Corr:      corr,
	}
	for _, v := range cv.Violations {
		res.Violations = append(res.Violations, v.String())
	}
	return res
}

func firstViolation(cv *CachedVerdict) string {
	if len(cv.Violations) == 0 {
		return "empty effective permission set"
	}
	return cv.Violations[0].String()
}

// emit records one market lifecycle audit event.
func (m *Market) emit(op string, v audit.Verdict, app string, corr uint64, detail string) {
	if !audit.On() {
		return
	}
	audit.Emit(audit.Event{
		Kind: audit.KindMarket, Verdict: v, App: app, Op: op, Corr: corr, Detail: detail,
		Tenant: m.cfg.Tenant,
	})
}

// ---------------------------------------------------------------------------
// Introspection

// AppSnapshot is one installed app's state for /market/apps and CLI
// listings.
type AppSnapshot struct {
	App     string    `json:"app"`
	Status  AppStatus `json:"status"`
	Version string    `json:"version,omitempty"`
	Vendor  string    `json:"vendor,omitempty"`
	Digest  string    `json:"digest,omitempty"`
	Verdict Verdict   `json:"verdict,omitempty"`
	// Effective renders the enforced permission set, canonical order.
	Effective string `json:"effective,omitempty"`
	// PendingVersion is the version awaiting sign-off, if any.
	PendingVersion string `json:"pending_version,omitempty"`
	// PrevVersion is the rollback target while in probation.
	PrevVersion string `json:"prev_version,omitempty"`
	// Releases lists every registry version for the app, ascending.
	Releases []string `json:"releases,omitempty"`
}

// Snapshot reports every app the market knows about (installed or with
// registry releases), sorted by name.
func (m *Market) Snapshot() []AppSnapshot {
	names := m.reg.Apps()
	m.mu.Lock()
	seen := make(map[string]bool, len(names))
	for _, n := range names {
		seen[n] = true
	}
	for n := range m.apps {
		if !seen[n] {
			names = append(names, n)
			seen[n] = true
		}
	}
	states := make(map[string]*appState, len(m.apps))
	for n, st := range m.apps {
		states[n] = st
	}
	m.mu.Unlock()

	out := make([]AppSnapshot, 0, len(names))
	for _, n := range names {
		snap := AppSnapshot{App: n}
		for _, rel := range m.reg.Releases(n) {
			snap.Releases = append(snap.Releases, rel.Version)
		}
		m.mu.Lock()
		if st, ok := states[n]; ok {
			snap.Status = st.status
			if st.active != nil {
				snap.Version = st.active.version
				snap.Vendor = st.active.vendor
				snap.Digest = st.active.digest.String()
				snap.Verdict = st.active.verdict
				snap.Effective = st.active.effective.SortedString()
			}
			if st.pending != nil {
				snap.PendingVersion = st.pending.version
			}
			if st.prev != nil {
				snap.PrevVersion = st.prev.version
			}
		}
		m.mu.Unlock()
		out = append(out, snap)
	}
	return out
}

// Status returns one app's snapshot.
func (m *Market) Status(app string) (AppSnapshot, bool) {
	for _, s := range m.Snapshot() {
		if s.App == app {
			return s, true
		}
	}
	return AppSnapshot{}, false
}

// ActivePermissions returns a copy of the permission set the market
// last activated for the app.
func (m *Market) ActivePermissions(app string) (*core.Set, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.apps[app]
	if !ok || st.active == nil {
		return nil, false
	}
	return st.active.effective.Clone(), true
}

// DiffReleases renders the permission-diff report between two stored
// releases of the same app, comparing their reconciled effective sets
// (what would actually be enforced under the site policy).
func (m *Market) DiffReleases(from, to Digest) (string, []DiffEntry, error) {
	fromRel, err := m.reg.Release(from)
	if err != nil {
		return "", nil, err
	}
	toRel, err := m.reg.Release(to)
	if err != nil {
		return "", nil, err
	}
	if fromRel.Name != toRel.Name {
		return "", nil, fmt.Errorf("%w: diff across different apps (%s vs %s)", ErrBadRequest, fromRel.Name, toRel.Name)
	}
	fromCV, _, err := m.reconcileRelease(fromRel)
	if err != nil {
		return "", nil, err
	}
	toCV, _, err := m.reconcileRelease(toRel)
	if err != nil {
		return "", nil, err
	}
	entries := DiffSets(fromCV.effective, toCV.effective)
	return FormatDiff(fromRel.Name, fromRel.Version, toRel.Version, entries), entries, nil
}

// DiffLatest renders the diff between an app's two highest versions —
// the "what changed since the release I'm running" admin view.
func (m *Market) DiffLatest(app string) (string, []DiffEntry, error) {
	rels := m.reg.Releases(app)
	if len(rels) == 0 {
		return "", nil, fmt.Errorf("%w: app %q has no stored releases", ErrUnknownRelease, app)
	}
	if len(rels) < 2 {
		return "", nil, fmt.Errorf("%w: app %q has one release; need two to diff", ErrBadRequest, app)
	}
	return m.DiffReleases(rels[len(rels)-2].Digest(), rels[len(rels)-1].Digest())
}

func refOf(sr *SignedRelease, cv *CachedVerdict) *releaseRef {
	ref := &releaseRef{
		digest:    sr.Digest(),
		version:   sr.Version,
		vendor:    sr.Vendor,
		verdict:   cv.Verdict,
		effective: cv.Effective(),
	}
	// The budget rides in the manifest source (so it is covered by the
	// release signature and the verdict-cache digest) but is not part of
	// the reconciled permission set; re-parse it here. A release that
	// reached refOf already parsed during reconciliation, so errors only
	// occur on cache hits of since-corrupted sources — treated as "no
	// budget".
	if man, err := permlang.Parse(sr.Manifest); err == nil {
		ref.budget = man.Budget
	}
	for _, v := range cv.Violations {
		ref.provenance = append(ref.provenance, v.String())
	}
	return ref
}
