package market

import "sdnshield/internal/obs"

// Market instruments, in the process-wide registry so they surface on
// /metrics next to the engine and shield series.
var (
	mCacheHits = obs.Default().Counter("sdnshield_market_verdict_cache_hits_total",
		"Reconciliation verdict cache hits: installs served without re-running Algorithm 1.")
	mCacheMisses = obs.Default().Counter("sdnshield_market_verdict_cache_misses_total",
		"Reconciliation verdict cache misses: unique (manifest, policy) pairs reconciled.")
	mSubmits = obs.Default().Counter("sdnshield_market_submissions_total",
		"Release packages accepted into the registry.", "outcome", "accepted")
	mSubmitRejects = obs.Default().Counter("sdnshield_market_submissions_total",
		"Release packages accepted into the registry.", "outcome", "rejected")
	mLifecycle = func() map[string]*obs.Counter {
		ops := []string{"install", "approve", "upgrade", "revoke", "rollback", "commit"}
		out := make(map[string]*obs.Counter, len(ops))
		for _, op := range ops {
			out[op] = obs.Default().Counter("sdnshield_market_lifecycle_total",
				"Market lifecycle operations by kind.", "op", op)
		}
		return out
	}()
	gActiveApps = obs.Default().Gauge("sdnshield_market_active_apps",
		"Apps currently running with market-managed permissions.")
	gProbations = obs.Default().Gauge("sdnshield_market_probations",
		"Upgrades currently inside their probation window.")
)

func countLifecycle(op string) {
	if c, ok := mLifecycle[op]; ok {
		c.Inc()
	}
}
