package market

import (
	"time"

	"sdnshield/internal/obs"
)

// Market instruments, in the process-wide registry so they surface on
// /metrics next to the engine and shield series.
var (
	mCacheHits = obs.Default().Counter("sdnshield_market_verdict_cache_hits_total",
		"Reconciliation verdict cache hits: installs served without re-running Algorithm 1.")
	mCacheMisses = obs.Default().Counter("sdnshield_market_verdict_cache_misses_total",
		"Reconciliation verdict cache misses: unique (manifest, policy) pairs reconciled.")
	mSubmits = obs.Default().Counter("sdnshield_market_submissions_total",
		"Release packages accepted into the registry.", "outcome", "accepted")
	mSubmitRejects = obs.Default().Counter("sdnshield_market_submissions_total",
		"Release packages accepted into the registry.", "outcome", "rejected")
	mLifecycle = func() map[string]*obs.Counter {
		ops := []string{"install", "approve", "upgrade", "revoke", "rollback", "commit"}
		out := make(map[string]*obs.Counter, len(ops))
		for _, op := range ops {
			out[op] = obs.Default().Counter("sdnshield_market_lifecycle_total",
				"Market lifecycle operations by kind.", "op", op)
		}
		return out
	}()
	gActiveApps = obs.Default().Gauge("sdnshield_market_active_apps",
		"Apps currently running with market-managed permissions.")
	gProbations = obs.Default().Gauge("sdnshield_market_probations",
		"Upgrades currently inside their probation window.")
	// mInstallSeconds is the end-to-end pipeline latency (provenance
	// lookup through activation) — the counter pair behind the install
	// latency SLO.
	mInstallSeconds = obs.Default().Histogram("sdnshield_market_install_seconds",
		"End-to-end install/upgrade pipeline latency.")
	// mStageSeconds breaks the pipeline down per stage, mirroring the
	// stage spans so the trace view and the metric view agree on where
	// time goes.
	mStageSeconds = func() map[string]*obs.Histogram {
		stages := []string{"verify", "parse", "reconcile", "cache_hit", "activate"}
		out := make(map[string]*obs.Histogram, len(stages))
		for _, st := range stages {
			out[st] = obs.Default().Histogram("sdnshield_market_stage_seconds",
				"Install pipeline latency by stage.", "stage", st)
		}
		return out
	}()
)

func observeStage(stage string, d time.Duration) {
	if h, ok := mStageSeconds[stage]; ok {
		h.Observe(d)
	}
}

func countLifecycle(op string) {
	if c, ok := mLifecycle[op]; ok {
		c.Inc()
	}
}
