package market

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"sync"
	"time"

	"sdnshield/internal/obs"
	"sdnshield/internal/obs/audit"
	"sdnshield/internal/obs/span"
)

// Replication and federation ride the same trust model as the local
// store: the wire carries only claims (log entries, digests, signed
// packages) and every pulled release re-runs the full provenance gate —
// vendor key lookup, Ed25519 signature, content-address re-hash —
// against the *local* key set before admission. A compromised upstream
// can therefore withhold releases but cannot inject one, and in
// federate mode it cannot even choose the trusted vendors.

// Replication instruments.
var (
	mSyncRounds = obs.Default().Counter("sdnshield_market_sync_rounds_total",
		"Replication/federation sync rounds completed (with or without new releases).")
	mSyncPulls = obs.Default().Counter("sdnshield_market_sync_releases_total",
		"Releases pulled from upstream registries by admission outcome.", "outcome", "admitted")
	mSyncRejects = obs.Default().Counter("sdnshield_market_sync_releases_total",
		"Releases pulled from upstream registries by admission outcome.", "outcome", "rejected")
	mSyncErrors = obs.Default().Counter("sdnshield_market_sync_errors_total",
		"Sync rounds aborted by transport or protocol errors.")
	gSyncLag = obs.Default().Gauge("sdnshield_market_sync_lag",
		"Release-log entries the follower has not yet applied (replica mode).")
)

// ---------------------------------------------------------------------------
// Leader lease

// LeaderLease is the single-writer guard on a registry's release log: a
// named holder with a monotonically increasing epoch and a TTL. The
// leader renews it from its own Heartbeat — never from serving reads,
// so a polling follower cannot keep a dead leader's lease alive —
// while followers record the epoch they last saw and refuse a
// regression (a stale leader re-appearing after a new one took over).
// The lease is advisory — it does not elect — but it makes split-brain
// *visible* and stops a follower from silently mixing two leaders'
// logs.
type LeaderLease struct {
	mu     sync.Mutex
	holder string
	epoch  uint64
	ttl    time.Duration
	expiry time.Time
}

// LeaseView is a lease's externally visible state — the /market/lease
// body.
type LeaseView struct {
	Holder    string    `json:"holder"`
	Epoch     uint64    `json:"epoch"`
	ExpiresAt time.Time `json:"expires_at"`
	TTLMillis int64     `json:"ttl_ms"`
	Expired   bool      `json:"expired"`
}

// NewLeaderLease builds a lease held by node (epoch 1). TTL <= 0
// defaults to 10s.
func NewLeaderLease(node string, ttl time.Duration) *LeaderLease {
	if ttl <= 0 {
		ttl = 10 * time.Second
	}
	return &LeaderLease{holder: node, epoch: 1, ttl: ttl, expiry: time.Now().Add(ttl)}
}

// Renew extends the lease and returns the fresh view. An expired lease
// renews under a bumped epoch — the "same leader, but followers must
// notice the gap" signal.
func (l *LeaderLease) Renew() LeaseView {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := time.Now()
	if now.After(l.expiry) {
		l.epoch++
	}
	l.expiry = now.Add(l.ttl)
	return l.viewLocked(now)
}

// Acquire transfers the lease to node, succeeding only when the lease
// is expired or node already holds it. A takeover bumps the epoch.
func (l *LeaderLease) Acquire(node string) (LeaseView, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := time.Now()
	if node != l.holder && now.Before(l.expiry) {
		return l.viewLocked(now), false
	}
	if node != l.holder || now.After(l.expiry) {
		l.epoch++
	}
	l.holder = node
	l.expiry = now.Add(l.ttl)
	return l.viewLocked(now), true
}

// View returns the lease state without renewing.
func (l *LeaderLease) View() LeaseView {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.viewLocked(time.Now())
}

// Heartbeat renews the lease on a ticker (a third of the TTL) until the
// returned stop function is called — the leader's liveness signal. Only
// the process that *is* the leader runs it; reads never renew, so when
// the leader dies its lease expires on schedule and a successor's
// Acquire goes through no matter how many followers keep polling.
func (l *LeaderLease) Heartbeat() (stop func()) {
	l.mu.Lock()
	interval := l.ttl / 3
	l.mu.Unlock()
	if interval <= 0 {
		interval = time.Second
	}
	ch := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-ch:
				return
			case <-t.C:
				l.Renew()
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(ch) })
		<-done
	}
}

func (l *LeaderLease) viewLocked(now time.Time) LeaseView {
	return LeaseView{
		Holder: l.holder, Epoch: l.epoch, ExpiresAt: l.expiry,
		TTLMillis: l.ttl.Milliseconds(), Expired: now.After(l.expiry),
	}
}

// SetLeaderLease arms the market's leader lease. /market/lease and
// /market/log serve its state without side effects; keeping it fresh is
// the leader's own job via LeaderLease.Heartbeat (or explicit Renew
// calls on its write path).
func (m *Market) SetLeaderLease(l *LeaderLease) {
	m.mu.Lock()
	m.lease = l
	m.mu.Unlock()
}

// Lease returns the market's leader lease (nil when not a leader).
func (m *Market) Lease() *LeaderLease {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lease
}

// ---------------------------------------------------------------------------
// Syncer

// SyncMode selects how a Syncer tracks its upstream.
type SyncMode string

const (
	// SyncReplica follows the upstream's release log by sequence number —
	// an ordered, restartable mirror of one leader.
	SyncReplica SyncMode = "replica"
	// SyncFederate runs digest-set anti-entropy against an upstream
	// registry: compare root digests, fetch whatever is missing. Order
	// does not matter and several upstreams can feed one registry.
	SyncFederate SyncMode = "federate"
)

// SyncConfig tunes a Syncer.
type SyncConfig struct {
	// Upstream is the upstream market's introspection base URL (the obs
	// endpoint MountHTTP registered on), e.g. "http://leader:9090".
	Upstream string
	// Mode defaults to SyncReplica.
	Mode SyncMode
	// Interval is the Run loop's poll cadence. Default 2s.
	Interval time.Duration
	// Dir, when set, persists every admitted release via SaveRelease so
	// the follower survives restarts from its own store.
	Dir string
	// TrustUpstreamKeys imports the upstream's vendor key set each round
	// before admission. Right for a replica (same trust domain as its
	// leader); wrong for federation, where the local operator provisions
	// which vendors to trust and everything else is rejected.
	TrustUpstreamKeys bool
	// Client defaults to a 10s-timeout http.Client.
	Client *http.Client
}

// SyncStats is a Syncer's cumulative view for introspection.
type SyncStats struct {
	Mode     SyncMode `json:"mode"`
	Upstream string   `json:"upstream"`
	Rounds   uint64   `json:"rounds"`
	Admitted uint64   `json:"admitted"`
	Rejected uint64   `json:"rejected"`
	Errors   uint64   `json:"errors"`
	LastSeq  uint64   `json:"last_seq,omitempty"`
	// LastEpoch is the upstream lease epoch last observed (0 before the
	// first round or when the upstream runs without a lease).
	LastEpoch uint64 `json:"last_epoch,omitempty"`
	// InSync reports whether the last round ended with nothing missing.
	InSync  bool   `json:"in_sync"`
	LastErr string `json:"last_err,omitempty"`
}

// Syncer pulls releases from an upstream registry into a local one,
// re-verifying each through the local provenance gate.
type Syncer struct {
	reg *Registry
	cfg SyncConfig

	mu    sync.Mutex
	stats SyncStats

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewSyncer builds a syncer feeding reg from cfg.Upstream.
func NewSyncer(reg *Registry, cfg SyncConfig) *Syncer {
	if cfg.Mode == "" {
		cfg.Mode = SyncReplica
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 2 * time.Second
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 10 * time.Second}
	}
	return &Syncer{
		reg:   reg,
		cfg:   cfg,
		stats: SyncStats{Mode: cfg.Mode, Upstream: cfg.Upstream},
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
}

// Stats returns the syncer's cumulative counters.
func (s *Syncer) Stats() SyncStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Start runs SyncOnce on the configured interval until Stop.
func (s *Syncer) Start() {
	go func() {
		defer close(s.done)
		t := time.NewTicker(s.cfg.Interval)
		defer t.Stop()
		for {
			_, _ = s.SyncOnce()
			select {
			case <-s.stop:
				return
			case <-t.C:
			}
		}
	}()
}

// Stop ends the Run loop and waits for the in-flight round.
func (s *Syncer) Stop() {
	s.stopOnce.Do(func() { close(s.stop) })
	<-s.done
}

// SyncOnce runs one sync round and reports how many releases were
// admitted. Per-release verification failures are counted, audited and
// skipped — one poisoned package must not stall the stream — while
// transport and protocol failures abort the round.
//
// Tracing: the round itself is a trace (root span "sync:<mode>" under a
// fresh corr), and each pulled release additionally continues the trace
// of its *original submission* — log entries carry the leader-side corr,
// so /trace/<corr> on the follower shows the pull and admission of the
// very release that corr submitted on the leader.
func (s *Syncer) SyncOnce() (admitted int, err error) {
	corr := audit.NextCorr()
	root := span.Root(corr, "sync:"+string(s.cfg.Mode))
	defer root.End()
	sc := root.Context()
	defer func() {
		s.mu.Lock()
		s.stats.Rounds++
		if err != nil {
			s.stats.Errors++
			s.stats.LastErr = err.Error()
			mSyncErrors.Inc()
		} else {
			s.stats.LastErr = ""
		}
		s.mu.Unlock()
		mSyncRounds.Inc()
	}()

	if err := s.checkLease(corr); err != nil {
		return 0, err
	}
	if s.cfg.TrustUpstreamKeys {
		if err := s.pullKeys(); err != nil {
			return 0, err
		}
	}
	if s.cfg.Mode == SyncFederate {
		return s.syncFederate(corr, sc)
	}
	return s.syncReplica(corr, sc)
}

// checkLease reads the upstream lease and refuses an epoch regression.
// An upstream without a lease (404) syncs unguarded.
func (s *Syncer) checkLease(corr uint64) error {
	var view LeaseView
	status, err := s.getJSON("/market/lease", nil, &view, span.Context{})
	if err != nil {
		return err
	}
	if status == http.StatusNotFound {
		return nil
	}
	if status != http.StatusOK {
		return fmt.Errorf("market: upstream lease returned %d", status)
	}
	s.mu.Lock()
	last := s.stats.LastEpoch
	if view.Epoch >= last {
		s.stats.LastEpoch = view.Epoch
	}
	s.mu.Unlock()
	if view.Epoch < last {
		err := fmt.Errorf("market: upstream lease epoch regressed (%d < %d): refusing stale leader %q", view.Epoch, last, view.Holder)
		if audit.On() {
			audit.Emit(audit.Event{
				Kind: audit.KindFederation, Verdict: audit.VerdictReject,
				Op: string(s.cfg.Mode), Corr: corr, Detail: err.Error(),
			})
		}
		return err
	}
	return nil
}

// pullKeys imports the upstream's trusted vendor key set.
func (s *Syncer) pullKeys() error {
	var keys map[string]string
	status, err := s.getJSON("/market/keys", nil, &keys, span.Context{})
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("market: upstream keys returned %d", status)
	}
	for vendor, hexKey := range keys {
		raw, err := hex.DecodeString(hexKey)
		if err != nil {
			return fmt.Errorf("market: upstream key for %q: %w", vendor, err)
		}
		if err := s.reg.TrustVendor(vendor, raw); err != nil {
			return err
		}
	}
	return nil
}

// syncReplica ships the upstream release log from the last applied
// sequence number.
func (s *Syncer) syncReplica(corr uint64, sc span.Context) (int, error) {
	s.mu.Lock()
	after := s.stats.LastSeq
	s.mu.Unlock()
	var resp struct {
		LastSeq uint64     `json:"last_seq"`
		Entries []LogEntry `json:"entries"`
	}
	pull := span.Start(sc, "sync:pull")
	status, err := s.getJSON("/market/log", url.Values{"after": {fmt.Sprint(after)}}, &resp, pull.Context())
	pull.End()
	if err != nil {
		return 0, err
	}
	if status != http.StatusOK {
		return 0, fmt.Errorf("market: upstream log returned %d", status)
	}
	gSyncLag.Set(int64(len(resp.Entries)))
	admitted := 0
	for _, e := range resp.Entries {
		// Continue the original submission's trace when the entry carries
		// one; otherwise the pull is attributed to this round's trace.
		ecorr, tc := corr, sc
		if e.Corr != 0 {
			ecorr, tc = e.Corr, span.Context{TraceID: e.Corr}
		}
		if s.admit(e.Digest, ecorr, tc) {
			admitted++
		}
		// The sequence advances even over a rejected entry: replaying a
		// package that failed local verification cannot succeed later, and
		// stalling the log on it would halt replication of everything
		// after. The rejection stays in the audit journal and counters.
		s.mu.Lock()
		s.stats.LastSeq = e.Seq
		s.mu.Unlock()
	}
	s.mu.Lock()
	s.stats.Admitted += uint64(admitted)
	s.stats.InSync = s.stats.LastSeq >= resp.LastSeq
	s.mu.Unlock()
	gSyncLag.Set(0)
	return admitted, nil
}

// syncFederate runs one digest-set anti-entropy round.
func (s *Syncer) syncFederate(corr uint64, sc span.Context) (int, error) {
	var resp struct {
		Root    string   `json:"root"`
		Digests []string `json:"digests"`
	}
	pull := span.Start(sc, "sync:pull")
	status, err := s.getJSON("/market/digests", nil, &resp, pull.Context())
	pull.End()
	if err != nil {
		return 0, err
	}
	if status != http.StatusOK {
		return 0, fmt.Errorf("market: upstream digests returned %d", status)
	}
	if resp.Root == s.reg.RootDigest() {
		s.mu.Lock()
		s.stats.InSync = true
		s.mu.Unlock()
		return 0, nil
	}
	local := make(map[string]bool)
	for _, d := range s.reg.Digests() {
		local[d] = true
	}
	admitted := 0
	for _, d := range resp.Digests {
		if local[d] {
			continue
		}
		if s.admit(d, corr, sc) {
			admitted++
		}
	}
	s.mu.Lock()
	s.stats.Admitted += uint64(admitted)
	// Equal roots only when every upstream release verified locally; a
	// federation boundary that rejects some vendors stays intentionally
	// divergent.
	s.stats.InSync = resp.Root == s.reg.RootDigest()
	s.mu.Unlock()
	return admitted, nil
}

// admit fetches one release by digest and pushes it through the local
// provenance gate: the claimed content address must match the fetched
// body's hash, then Submit re-checks vendor trust, signature, semver
// and manifest. Reports whether the release entered the registry. corr
// and tc are the operation identity the admission runs under — the
// original submission's when the log entry carries one, the sync
// round's otherwise — so both the fetch (upstream serve side) and the
// local re-verification land in that trace.
func (s *Syncer) admit(digest string, corr uint64, tc span.Context) bool {
	sp := span.Start(tc, "sync:admit")
	sp.Annotate(digest)
	defer sp.End()
	if _, err := ParseDigest(digest); err != nil {
		s.reject(digest, corr, err)
		return false
	}
	var sr SignedRelease
	status, err := s.getJSON("/market/release", url.Values{"digest": {digest}}, &sr, sp.Context())
	if err != nil || status != http.StatusOK {
		if err == nil {
			err = fmt.Errorf("market: upstream release fetch returned %d", status)
		}
		s.reject(digest, corr, err)
		return false
	}
	if got := sr.Digest().String(); got != digest {
		s.reject(digest, corr, fmt.Errorf("market: upstream body hashes to %s, not the claimed digest — tampered in transit or at rest", got))
		return false
	}
	if _, err := s.reg.SubmitTraced(&sr, corr); err != nil {
		s.reject(digest, corr, err)
		return false
	}
	if s.cfg.Dir != "" {
		if _, err := SaveRelease(s.cfg.Dir, &sr); err != nil {
			// Admission already happened; persistence failure degrades
			// restart durability, not correctness — audit it distinctly
			// instead of counting one release as both admitted and
			// rejected.
			if audit.On() {
				audit.Emit(audit.Event{
					Kind: audit.KindFederation, Verdict: audit.VerdictPersistFailed,
					App: sr.Name, Op: string(s.cfg.Mode), Corr: corr,
					Detail: fmt.Sprintf("release %s admitted but not persisted to %s: %v", digest, s.cfg.Dir, err),
				})
			}
		}
	}
	mSyncPulls.Inc()
	if audit.On() {
		audit.Emit(audit.Event{
			Kind: audit.KindFederation, Verdict: audit.VerdictPull,
			App: sr.Name, Op: string(s.cfg.Mode), Corr: corr,
			Detail: fmt.Sprintf("release %s@%s (digest %s) admitted from %s", sr.Name, sr.Version, digest, s.cfg.Upstream),
		})
	}
	return true
}

// reject counts and audits one refused upstream release.
func (s *Syncer) reject(digest string, corr uint64, err error) {
	s.mu.Lock()
	s.stats.Rejected++
	s.mu.Unlock()
	mSyncRejects.Inc()
	if audit.On() {
		audit.Emit(audit.Event{
			Kind: audit.KindFederation, Verdict: audit.VerdictReject,
			Op: string(s.cfg.Mode), Corr: corr,
			Detail: fmt.Sprintf("release %s from %s refused: %v", digest, s.cfg.Upstream, err),
		})
	}
}

// getJSON GETs path on the upstream and decodes the body into out when
// the status is 200. Non-2xx statuses are returned for the caller to
// interpret; only transport errors error. A valid sc rides along in the
// trace header so the upstream can record its serve side of the pull.
func (s *Syncer) getJSON(path string, q url.Values, out interface{}, sc span.Context) (int, error) {
	u := s.cfg.Upstream + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	req, err := http.NewRequest(http.MethodGet, u, nil)
	if err != nil {
		return 0, err
	}
	if sc.Valid() {
		req.Header.Set(span.Header, sc.String())
	}
	resp, err := s.cfg.Client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, nil
	}
	return resp.StatusCode, json.NewDecoder(resp.Body).Decode(out)
}
