package market

import (
	"encoding/json"
	"errors"
	"fmt"

	"sdnshield/internal/jobs"
	"sdnshield/internal/obs/span"
)

// Market queue names on the job spine. One queue per pipeline step so
// each gets its own worker pool, backlog bound and metrics series.
const (
	// QueueInstall runs the install pipeline (verify → reconcile →
	// activate) for a stored release.
	QueueInstall = "market.install"
	// QueueUpgrade runs the upgrade pipeline (version gate → reconcile →
	// probated activation).
	QueueUpgrade = "market.upgrade"
	// QueueRecompute re-runs reconciliation across stored releases,
	// refreshing the verdict cache.
	QueueRecompute = "market.recompute"
)

// ErrNoJobs reports an async operation on a market with no job manager
// attached.
var ErrNoJobs = errors.New("market: no job manager attached")

// JobRequest is the payload of every market job: the release to drive
// through a pipeline (install/upgrade) or the app to sweep (recompute;
// empty App sweeps the whole registry).
type JobRequest struct {
	Digest string `json:"digest,omitempty"`
	App    string `json:"app,omitempty"`
}

// AttachJobs rides the market's pipelines on a job manager: the three
// market queues get handlers and worker pools, and MountHTTP's
// install/upgrade handlers switch to enqueue-and-202. The manager may
// hold a WAL-replayed backlog; those jobs start executing here.
func (m *Market) AttachJobs(jm *jobs.Manager, workers int) {
	m.mu.Lock()
	m.jobsMgr = jm
	m.mu.Unlock()
	jm.Handle(QueueInstall, workers, m.pipelineHandler(m.InstallTraced))
	jm.Handle(QueueUpgrade, workers, m.pipelineHandler(m.UpgradeTraced))
	jm.Handle(QueueRecompute, workers, m.recomputeHandler)
}

// Jobs returns the attached job manager (nil for a synchronous market).
func (m *Market) Jobs() *jobs.Manager {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.jobsMgr
}

// SubmitJob enqueues one market job, durably, and returns its ID for
// polling at /market/jobs/<id>. corr ties the job's audit trail back to
// the submitting request; sc (may be zero) is the span context the
// worker-side execution continues under — persisted with the job, so
// the trace survives a WAL replay.
func (m *Market) SubmitJob(queue string, req JobRequest, corr uint64, sc span.Context) (uint64, error) {
	jm := m.Jobs()
	if jm == nil {
		return 0, ErrNoJobs
	}
	payload, err := json.Marshal(req)
	if err != nil {
		return 0, err
	}
	return jm.Enqueue(queue, payload,
		jobs.WithCorr(corr), jobs.WithTrace(sc), jobs.WithTenant(m.cfg.Tenant))
}

// pipelineHandler adapts an install/upgrade step into a job handler:
// decode the request, run the pipeline under the job's operation
// identity (the corr and span context it was enqueued with, by this
// process or a predecessor whose WAL we replayed), retain the
// InstallResult as the job's pollable result. Deterministic refusals
// (unknown release, rejection, version gate) dead-letter immediately;
// anything else burns an attempt and retries.
func (m *Market) pipelineHandler(step func(Digest, OpTrace) (*InstallResult, error)) jobs.Handler {
	return func(j jobs.Snapshot) ([]byte, error) {
		var req JobRequest
		if err := json.Unmarshal(j.Payload, &req); err != nil {
			return nil, jobs.Permanent(fmt.Errorf("market: bad job payload: %w", err))
		}
		d, err := ParseDigest(req.Digest)
		if err != nil {
			return nil, jobs.Permanent(err)
		}
		res, err := step(d, OpTrace{Corr: j.Corr, Span: j.Trace})
		if err != nil {
			return nil, classifyJobErr(err)
		}
		return json.Marshal(res)
	}
}

// recomputeHandler sweeps reconciliation verdicts for one app or the
// whole registry.
func (m *Market) recomputeHandler(j jobs.Snapshot) ([]byte, error) {
	var req JobRequest
	if len(j.Payload) > 0 {
		if err := json.Unmarshal(j.Payload, &req); err != nil {
			return nil, jobs.Permanent(fmt.Errorf("market: bad job payload: %w", err))
		}
	}
	n, err := m.Recompute(req.App)
	if err != nil {
		return nil, classifyJobErr(err)
	}
	return json.Marshal(map[string]int{"recomputed": n})
}

// classifyJobErr marks the market's deterministic refusals Permanent so
// they dead-letter with their reason instead of burning the retry
// budget on an outcome that cannot change.
func classifyJobErr(err error) error {
	switch {
	case errors.Is(err, ErrUnknownRelease), errors.Is(err, ErrRejected),
		errors.Is(err, ErrAlreadyInstalled), errors.Is(err, ErrNotAnUpgrade),
		errors.Is(err, ErrNotInstalled), errors.Is(err, ErrNothingPending),
		errors.Is(err, ErrBadSignature), errors.Is(err, ErrUnknownVendor),
		errors.Is(err, ErrDuplicateRelease):
		return jobs.Permanent(err)
	}
	return err
}
