package market

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sdnshield/internal/obs/audit"
)

// seedStore writes a valid store (one key, one good release) plus
// whatever corruption the case adds, then loads it.
func seedStore(t *testing.T) (dir string, goodDigest string) {
	t.Helper()
	dir = t.TempDir()
	if _, err := Keygen(dir, "acme"); err != nil {
		t.Fatal(err)
	}
	priv, err := LoadPrivateKey(filepath.Join(dir, "keys", "acme.key"))
	if err != nil {
		t.Fatal(err)
	}
	sr := Sign(Release{Name: "mon", Vendor: "acme", Version: "1.0.0", Manifest: "PERM read_statistics"}, priv)
	if _, err := SaveRelease(dir, sr); err != nil {
		t.Fatal(err)
	}
	return dir, sr.Digest().String()
}

// TestLoadDirSkipsCorruption proves load-time resilience: every
// corruption is skipped with a problem entry and an audit event, never
// an abort, and the valid release always survives.
func TestLoadDirSkipsCorruption(t *testing.T) {
	cases := []struct {
		name string
		// corrupt mutates the store and returns a substring the problem
		// report must contain.
		corrupt func(t *testing.T, dir string) string
	}{
		{
			name: "truncated release file",
			corrupt: func(t *testing.T, dir string) string {
				// A digest-named file holding half a JSON document — a crash
				// mid-write or a torn copy.
				p := filepath.Join(dir, "releases", strings.Repeat("ab", 32)+".json")
				if err := os.WriteFile(p, []byte(`{"name":"mon","vendor":"ac`), 0o644); err != nil {
					t.Fatal(err)
				}
				return "unexpected end of JSON"
			},
		},
		{
			name: "digest mismatch",
			corrupt: func(t *testing.T, dir string) string {
				// A well-formed package renamed to the wrong content address —
				// tampering, or an overwrite with a different release.
				priv, err := LoadPrivateKey(filepath.Join(dir, "keys", "acme.key"))
				if err != nil {
					t.Fatal(err)
				}
				other := Sign(Release{Name: "tap", Vendor: "acme", Version: "9.9.9", Manifest: "PERM read_statistics"}, priv)
				data, _ := json.Marshal(other)
				p := filepath.Join(dir, "releases", strings.Repeat("cd", 32)+".json")
				if err := os.WriteFile(p, data, 0o644); err != nil {
					t.Fatal(err)
				}
				return "does not match filename"
			},
		},
		{
			name: "orphaned key",
			corrupt: func(t *testing.T, dir string) string {
				// A .pub file whose content is not a key at all.
				p := filepath.Join(dir, "keys", "ghost.pub")
				if err := os.WriteFile(p, []byte("not-hex-at-all\n"), 0o644); err != nil {
					t.Fatal(err)
				}
				return "key ghost.pub"
			},
		},
		{
			name: "release signed by untrusted vendor",
			corrupt: func(t *testing.T, dir string) string {
				_, priv := genKey(t)
				sr := Sign(Release{Name: "tap", Vendor: "nobody", Version: "1.0.0", Manifest: "PERM read_statistics"}, priv)
				if _, err := SaveRelease(dir, sr); err != nil {
					t.Fatal(err)
				}
				return "unknown vendor"
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir, goodDigest := seedStore(t)
			wantSubstr := tc.corrupt(t, dir)

			var afterSeq uint64
			if evs := audit.Default().Query(audit.Filter{}); len(evs) > 0 {
				afterSeq = evs[len(evs)-1].Seq
			}
			reg := NewRegistry()
			loaded, problems, err := LoadDir(dir, reg)
			if err != nil {
				t.Fatalf("LoadDir aborted: %v", err)
			}
			if loaded != 1 {
				t.Fatalf("loaded %d, want the 1 valid release", loaded)
			}
			if len(problems) != 1 || !strings.Contains(problems[0], wantSubstr) {
				t.Fatalf("problems = %v, want one containing %q", problems, wantSubstr)
			}
			d, err := ParseDigest(goodDigest)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := reg.Release(d); err != nil {
				t.Fatalf("valid release lost: %v", err)
			}
			// The skip landed in the audit journal.
			waitCond(t, "load-skip audit event", func() bool {
				evs := audit.Default().Query(audit.Filter{
					Kind: audit.KindMarket, Verdict: audit.VerdictReject, AfterSeq: afterSeq,
				})
				for _, ev := range evs {
					if ev.Op == "load" && strings.Contains(ev.Detail, wantSubstr) {
						return true
					}
				}
				return false
			})
		})
	}
}
