// Package market is SDNShield's app-market subsystem: the distribution
// and lifecycle layer the paper's §III workflow presumes but the
// prototype hardcodes. An app release ships as a signed package — its
// permission manifest plus identifying metadata, content-addressed by
// SHA-256 and signed with the vendor's Ed25519 key — and a Registry of
// trusted vendor keys rejects tampered or unsigned packages before any
// policy machinery runs. The Market engine then drives every accepted
// release through the install pipeline (verify → parse → reconcile
// against the site policy, with a verdict cache keyed by manifest and
// policy digests so Algorithm 1 runs once per unique pair), activates
// the reconciled permissions atomically into a running isolation.Shield,
// and supervises live upgrades with a probation window that rolls back
// to the previous release's permissions if the app degrades.
package market

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
)

// Release is the unsigned content of one app release: what the vendor
// publishes to the market. The canonical byte encoding (and therefore
// the digest and signature) covers every field.
type Release struct {
	// Name is the app identity the release installs as — the principal
	// permission checks run against.
	Name string `json:"name"`
	// Vendor names the publishing vendor; it selects the trusted key the
	// signature is verified with.
	Vendor string `json:"vendor"`
	// Version is the release's semantic version ("1.2.0").
	Version string `json:"version"`
	// Manifest is the permission manifest source (permission language)
	// the app ships with.
	Manifest string `json:"manifest"`
}

// Digest is a SHA-256 content address.
type Digest [sha256.Size]byte

// String renders the digest as lowercase hex.
func (d Digest) String() string { return hex.EncodeToString(d[:]) }

// ParseDigest parses a lowercase-hex digest.
func ParseDigest(s string) (Digest, error) {
	var d Digest
	b, err := hex.DecodeString(strings.TrimSpace(s))
	if err != nil {
		return d, fmt.Errorf("market: bad digest %q: %w", s, err)
	}
	if len(b) != sha256.Size {
		return d, fmt.Errorf("market: bad digest length %d", len(b))
	}
	copy(d[:], b)
	return d, nil
}

// canonicalMagic domain-separates release signatures from any other
// Ed25519 use of the same key.
const canonicalMagic = "sdnshield-release-v1"

// Canonical returns the release's canonical byte encoding: the magic
// followed by each field length-prefixed (uvarint), so no two distinct
// releases share an encoding.
func (r *Release) Canonical() []byte {
	fields := []string{r.Name, r.Vendor, r.Version, r.Manifest}
	var buf []byte
	buf = append(buf, canonicalMagic...)
	var tmp [binary.MaxVarintLen64]byte
	for _, f := range fields {
		n := binary.PutUvarint(tmp[:], uint64(len(f)))
		buf = append(buf, tmp[:n]...)
		buf = append(buf, f...)
	}
	return buf
}

// Digest returns the release's SHA-256 content address over the
// canonical encoding.
func (r *Release) Digest() Digest { return sha256.Sum256(r.Canonical()) }

// SignedRelease is a release plus its vendor signature — the package
// format that crosses the market boundary.
type SignedRelease struct {
	Release
	// Sig is the vendor's Ed25519 signature over the canonical encoding,
	// hex in JSON.
	Sig HexBytes `json:"sig"`
}

// HexBytes marshals byte slices as lowercase hex in JSON, keeping the
// wire format and the on-disk package format human-diffable.
type HexBytes []byte

// MarshalJSON implements json.Marshaler.
func (h HexBytes) MarshalJSON() ([]byte, error) {
	return []byte(`"` + hex.EncodeToString(h) + `"`), nil
}

// UnmarshalJSON implements json.Unmarshaler.
func (h *HexBytes) UnmarshalJSON(data []byte) error {
	s := strings.Trim(string(data), `"`)
	b, err := hex.DecodeString(s)
	if err != nil {
		return err
	}
	*h = b
	return nil
}

// GenerateKey creates a fresh vendor keypair (a convenience over the
// stdlib for callers that keep keys in memory; Keygen persists one).
func GenerateKey() (ed25519.PublicKey, ed25519.PrivateKey, error) {
	return ed25519.GenerateKey(rand.Reader)
}

// Sign produces the vendor-signed package for a release.
func Sign(r Release, priv ed25519.PrivateKey) *SignedRelease {
	return &SignedRelease{Release: r, Sig: ed25519.Sign(priv, r.Canonical())}
}

// VerifySignature checks the package's signature under the given vendor
// key.
func (sr *SignedRelease) VerifySignature(pub ed25519.PublicKey) bool {
	return len(pub) == ed25519.PublicKeySize && ed25519.Verify(pub, sr.Canonical(), sr.Sig)
}

// ---------------------------------------------------------------------------
// Semantic versions

// Version is a parsed MAJOR.MINOR.PATCH semantic version.
type Version struct {
	Major, Minor, Patch int
}

// ParseVersion parses "MAJOR.MINOR.PATCH" (each a non-negative integer).
func ParseVersion(s string) (Version, error) {
	parts := strings.Split(strings.TrimSpace(s), ".")
	if len(parts) != 3 {
		return Version{}, fmt.Errorf("market: bad version %q (want MAJOR.MINOR.PATCH)", s)
	}
	var nums [3]int
	for i, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil || n < 0 {
			return Version{}, fmt.Errorf("market: bad version component %q in %q", p, s)
		}
		nums[i] = n
	}
	return Version{Major: nums[0], Minor: nums[1], Patch: nums[2]}, nil
}

// String renders the version.
func (v Version) String() string {
	return fmt.Sprintf("%d.%d.%d", v.Major, v.Minor, v.Patch)
}

// Compare orders versions: -1 when v < o, 0 when equal, 1 when v > o.
func (v Version) Compare(o Version) int {
	switch {
	case v.Major != o.Major:
		return cmpInt(v.Major, o.Major)
	case v.Minor != o.Minor:
		return cmpInt(v.Minor, o.Minor)
	default:
		return cmpInt(v.Patch, o.Patch)
	}
}

func cmpInt(a, b int) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}
