package market

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sdnshield/internal/obs"
)

// newHTTPEnv mounts a market on the obs extension routes and returns the
// composed handler plus the signing helper.
func newHTTPEnv(t *testing.T) (http.Handler, *Market, func(r Release) *SignedRelease) {
	t.Helper()
	reg, sign := newTestRegistry(t)
	rt := newFakeRuntime()
	m, err := New(reg, rt, Config{
		PolicySrc:     testPolicy,
		Probation:     50 * time.Millisecond,
		ProbationPoll: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	MountHTTP(m)
	h := obs.NewHandler(obs.Default(), nil)
	return h, m, sign
}

func postJSON(t *testing.T, h http.Handler, path string, body interface{}) *httptest.ResponseRecorder {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(data))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func TestHTTPInstallApproveFlow(t *testing.T) {
	h, _, sign := newHTTPEnv(t)

	// A clean release installs straight to active.
	sr := sign(Release{Name: "mon", Vendor: "acme", Version: "1.0.0",
		Manifest: "PERM read_statistics\nPERM insert_flow LIMITING IP_DST 10.1.0.0 MASK 255.255.0.0"})
	w := postJSON(t, h, "/market/install", sr)
	if w.Code != http.StatusOK {
		t.Fatalf("install status = %d body=%s", w.Code, w.Body)
	}
	var res InstallResult
	if err := json.Unmarshal(w.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusActive || res.Verdict != VerdictApproved {
		t.Fatalf("result = %+v", res)
	}

	// The apps listing shows it.
	req := httptest.NewRequest(http.MethodGet, "/market/apps", nil)
	lw := httptest.NewRecorder()
	h.ServeHTTP(lw, req)
	if lw.Code != http.StatusOK || !strings.Contains(lw.Body.String(), `"mon"`) {
		t.Fatalf("apps status=%d body=%s", lw.Code, lw.Body)
	}

	// Upgrade with an over-broad manifest parks pending; approve over HTTP.
	up := sign(Release{Name: "mon", Vendor: "acme", Version: "1.1.0",
		Manifest: "PERM read_statistics\nPERM insert_flow LIMITING IP_DST 10.0.0.0 MASK 255.0.0.0"})
	w = postJSON(t, h, "/market/upgrade", up)
	if w.Code != http.StatusOK {
		t.Fatalf("upgrade status = %d body=%s", w.Code, w.Body)
	}
	w = postJSON(t, h, "/market/approve", map[string]string{"app": "mon"})
	if w.Code != http.StatusOK {
		t.Fatalf("approve status = %d body=%s", w.Code, w.Body)
	}

	// Diff between the two registry releases.
	dreq := httptest.NewRequest(http.MethodGet, "/market/diff?app=mon", nil)
	dw := httptest.NewRecorder()
	h.ServeHTTP(dw, dreq)
	if dw.Code != http.StatusOK || !strings.Contains(dw.Body.String(), "insert_flow") {
		t.Fatalf("diff status=%d body=%s", dw.Code, dw.Body)
	}

	// Revoke over HTTP.
	w = postJSON(t, h, "/market/revoke", map[string]string{"app": "mon"})
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), string(StatusRevoked)) {
		t.Fatalf("revoke status=%d body=%s", w.Code, w.Body)
	}
}

func TestHTTPErrorMapping(t *testing.T) {
	h, _, sign := newHTTPEnv(t)

	// Unknown vendor: 403.
	_, priv := genKey(t)
	rogue := Sign(Release{Name: "mon", Vendor: "shady", Version: "1.0.0", Manifest: "PERM read_statistics"}, priv)
	if w := postJSON(t, h, "/market/install", rogue); w.Code != http.StatusForbidden {
		t.Fatalf("unknown vendor status = %d", w.Code)
	}

	// Tampered package: 403.
	tampered := sign(Release{Name: "mon", Vendor: "acme", Version: "1.0.0", Manifest: "PERM read_statistics"})
	tampered.Manifest = "PERM process_runtime"
	if w := postJSON(t, h, "/market/install", tampered); w.Code != http.StatusForbidden {
		t.Fatalf("tampered status = %d", w.Code)
	}

	// Rejected verdict: 409 with the result body.
	rej := sign(Release{Name: "mon", Vendor: "acme", Version: "1.0.0", Manifest: "PERM process_runtime"})
	w := postJSON(t, h, "/market/install", rej)
	if w.Code != http.StatusConflict {
		t.Fatalf("rejected status = %d body=%s", w.Code, w.Body)
	}
	var res InstallResult
	if err := json.Unmarshal(w.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.Verdict != VerdictRejected {
		t.Fatalf("rejected body = %+v", res)
	}

	// Approve with nothing pending: 404.
	if w := postJSON(t, h, "/market/approve", map[string]string{"app": "ghost"}); w.Code != http.StatusNotFound {
		t.Fatalf("approve ghost status = %d", w.Code)
	}
	// Bad JSON: 400.
	req := httptest.NewRequest(http.MethodPost, "/market/install", strings.NewReader("{not json"))
	bw := httptest.NewRecorder()
	h.ServeHTTP(bw, req)
	if bw.Code != http.StatusBadRequest {
		t.Fatalf("bad JSON status = %d", bw.Code)
	}
	// GET on a POST route: 405.
	req = httptest.NewRequest(http.MethodGet, "/market/install", nil)
	gw := httptest.NewRecorder()
	h.ServeHTTP(gw, req)
	if gw.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET install status = %d", gw.Code)
	}
}

// TestHTTPDigestOnlyInstall: the administrator's path — releases already
// sit in the registry (loaded from the on-disk store), so install and
// upgrade take just a content address.
func TestHTTPDigestOnlyInstall(t *testing.T) {
	h, m, sign := newHTTPEnv(t)

	sr := sign(Release{Name: "mon", Vendor: "acme", Version: "1.0.0",
		Manifest: "PERM read_statistics"})
	d, err := m.Registry().Submit(sr)
	if err != nil {
		t.Fatal(err)
	}
	w := postJSON(t, h, "/market/install", map[string]string{"digest": d.String()})
	if w.Code != http.StatusOK {
		t.Fatalf("digest-only install status = %d body=%s", w.Code, w.Body)
	}
	var res InstallResult
	if err := json.Unmarshal(w.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusActive {
		t.Fatalf("status = %s body=%s", res.Status, w.Body)
	}

	// Upgrade by digest too.
	sr2 := sign(Release{Name: "mon", Vendor: "acme", Version: "1.1.0",
		Manifest: "PERM read_statistics LIMITING PORT_LEVEL"})
	d2, err := m.Registry().Submit(sr2)
	if err != nil {
		t.Fatal(err)
	}
	w = postJSON(t, h, "/market/upgrade", map[string]string{"digest": d2.String()})
	if w.Code != http.StatusOK {
		t.Fatalf("digest-only upgrade status = %d body=%s", w.Code, w.Body)
	}

	// A digest the registry has never seen maps to 404; a malformed one
	// to 400.
	ghost := Release{Name: "ghost", Vendor: "acme", Version: "9.9.9", Manifest: "PERM read_statistics\n# ghost"}
	w = postJSON(t, h, "/market/install", map[string]string{"digest": ghost.Digest().String()})
	if w.Code != http.StatusNotFound {
		t.Fatalf("unknown digest status = %d body=%s", w.Code, w.Body)
	}
	w = postJSON(t, h, "/market/install", map[string]string{"digest": "zz"})
	if w.Code != http.StatusBadRequest {
		t.Fatalf("malformed digest status = %d body=%s", w.Code, w.Body)
	}
}
