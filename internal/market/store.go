package market

import (
	"crypto/ed25519"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"sdnshield/internal/obs/audit"
)

// Store layout under a market directory:
//
//	DIR/keys/<vendor>.pub   trusted vendor public key, hex
//	DIR/keys/<vendor>.key   vendor private key, hex (created by Keygen;
//	                        a controller-side store normally has none)
//	DIR/releases/<digest>.json  signed release package
//
// The store is deliberately dumb — flat files, content-addressed names —
// so packages can be shipped, diffed and inspected with standard tools,
// and a tampered file is caught by the digest/signature re-check on
// load.

// Keygen generates a vendor keypair under dir/keys and returns the
// public key. Existing key files are refused rather than overwritten.
func Keygen(dir, vendor string) (ed25519.PublicKey, error) {
	if err := validName(vendor); err != nil {
		return nil, err
	}
	keyDir := filepath.Join(dir, "keys")
	if err := os.MkdirAll(keyDir, 0o755); err != nil {
		return nil, err
	}
	pubPath := filepath.Join(keyDir, vendor+".pub")
	keyPath := filepath.Join(keyDir, vendor+".key")
	for _, p := range []string{pubPath, keyPath} {
		if _, err := os.Stat(p); err == nil {
			return nil, fmt.Errorf("market: refusing to overwrite existing %s", p)
		}
	}
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(pubPath, []byte(hex.EncodeToString(pub)+"\n"), 0o644); err != nil {
		return nil, err
	}
	if err := os.WriteFile(keyPath, []byte(hex.EncodeToString(priv)+"\n"), 0o600); err != nil {
		return nil, err
	}
	return pub, nil
}

// LoadPrivateKey reads a hex-encoded Ed25519 private key file.
func LoadPrivateKey(path string) (ed25519.PrivateKey, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	raw, err := hex.DecodeString(strings.TrimSpace(string(b)))
	if err != nil {
		return nil, fmt.Errorf("market: bad key file %s: %w", path, err)
	}
	if len(raw) != ed25519.PrivateKeySize {
		return nil, fmt.Errorf("market: bad private key size %d in %s", len(raw), path)
	}
	return raw, nil
}

// LoadPublicKey reads a hex-encoded Ed25519 public key file.
func LoadPublicKey(path string) (ed25519.PublicKey, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	raw, err := hex.DecodeString(strings.TrimSpace(string(b)))
	if err != nil {
		return nil, fmt.Errorf("market: bad key file %s: %w", path, err)
	}
	if len(raw) != ed25519.PublicKeySize {
		return nil, fmt.Errorf("market: bad public key size %d in %s", len(raw), path)
	}
	return raw, nil
}

// SaveRelease writes a signed package under dir/releases, named by its
// content address.
func SaveRelease(dir string, sr *SignedRelease) (string, error) {
	relDir := filepath.Join(dir, "releases")
	if err := os.MkdirAll(relDir, 0o755); err != nil {
		return "", err
	}
	data, err := json.MarshalIndent(sr, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(relDir, sr.Digest().String()+".json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// LoadDir populates a registry from a market directory: every key under
// keys/ is trusted, then every package under releases/ is submitted
// through the full provenance gate. Tampered or unverifiable packages
// are skipped and reported in the returned problem list (the registry
// stays usable; the administrator sees exactly what was refused), and
// each skip lands in the audit journal so on-disk corruption is
// attributable after the fact, not just at boot.
func LoadDir(dir string, reg *Registry) (loaded int, problems []string, err error) {
	skip := func(what string, err error) {
		problems = append(problems, fmt.Sprintf("%s: %v", what, err))
		if audit.On() {
			audit.Emit(audit.Event{
				Kind: audit.KindMarket, Verdict: audit.VerdictReject, Op: "load",
				Detail: fmt.Sprintf("store %s: skipped %s: %v", dir, what, err),
			})
		}
	}
	keyDir := filepath.Join(dir, "keys")
	if entries, err := os.ReadDir(keyDir); err == nil {
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".pub") {
				continue
			}
			vendor := strings.TrimSuffix(e.Name(), ".pub")
			pub, err := LoadPublicKey(filepath.Join(keyDir, e.Name()))
			if err != nil {
				skip("key "+e.Name(), err)
				continue
			}
			if err := reg.TrustVendor(vendor, pub); err != nil {
				skip("key "+e.Name(), err)
			}
		}
	}

	relDir := filepath.Join(dir, "releases")
	entries, err := os.ReadDir(relDir)
	if os.IsNotExist(err) {
		return loaded, problems, nil
	}
	if err != nil {
		return loaded, problems, err
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		path := filepath.Join(relDir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			skip("release "+e.Name(), err)
			continue
		}
		var sr SignedRelease
		if err := json.Unmarshal(data, &sr); err != nil {
			skip("release "+e.Name(), err)
			continue
		}
		// The filename is the claimed content address; a file whose
		// content hashes differently was renamed or edited.
		want := strings.TrimSuffix(e.Name(), ".json")
		if got := sr.Digest().String(); got != want {
			skip("release "+e.Name(), fmt.Errorf("content digest %s does not match filename", got))
			continue
		}
		if _, err := reg.Submit(&sr); err != nil {
			skip("release "+e.Name(), err)
			continue
		}
		loaded++
	}
	return loaded, problems, nil
}

func validName(name string) error {
	if name == "" {
		return fmt.Errorf("market: empty name")
	}
	for _, r := range name {
		if !(r == '-' || r == '_' || r == '.' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')) {
			return fmt.Errorf("market: name %q contains %q; use [A-Za-z0-9._-]", name, r)
		}
	}
	if strings.HasPrefix(name, ".") {
		return fmt.Errorf("market: name %q may not start with a dot", name)
	}
	return nil
}
