package market

import (
	"crypto/ed25519"
	"crypto/rand"
	"encoding/json"
	"testing"
)

func genKey(t testing.TB) (ed25519.PublicKey, ed25519.PrivateKey) {
	t.Helper()
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	return pub, priv
}

func TestCanonicalEncodingDistinguishesFieldBoundaries(t *testing.T) {
	// "ab"+"c" vs "a"+"bc" must not collide: length prefixes make the
	// encoding injective.
	a := Release{Name: "ab", Vendor: "c", Version: "1.0.0", Manifest: "PERM read_statistics"}
	b := Release{Name: "a", Vendor: "bc", Version: "1.0.0", Manifest: "PERM read_statistics"}
	if a.Digest() == b.Digest() {
		t.Fatal("digest collision across field boundaries")
	}
}

func TestDigestStableAndContentSensitive(t *testing.T) {
	r := Release{Name: "mon", Vendor: "acme", Version: "1.2.3", Manifest: "PERM read_statistics"}
	if r.Digest() != r.Digest() {
		t.Fatal("digest not deterministic")
	}
	r2 := r
	r2.Manifest = "PERM read_statistics\nPERM insert_flow"
	if r.Digest() == r2.Digest() {
		t.Fatal("manifest change did not change digest")
	}
}

func TestSignVerifyAndTamper(t *testing.T) {
	pub, priv := genKey(t)
	r := Release{Name: "mon", Vendor: "acme", Version: "1.0.0", Manifest: "PERM read_statistics"}
	sr := Sign(r, priv)
	if !sr.VerifySignature(pub) {
		t.Fatal("valid signature did not verify")
	}
	// Tampering with any field invalidates the signature.
	tampered := *sr
	tampered.Manifest = "PERM read_statistics\nPERM process_runtime"
	if tampered.VerifySignature(pub) {
		t.Fatal("tampered manifest verified")
	}
	// A different vendor's key does not verify.
	otherPub, _ := genKey(t)
	if sr.VerifySignature(otherPub) {
		t.Fatal("signature verified under the wrong key")
	}
	// A truncated key never verifies (and never panics).
	if sr.VerifySignature(pub[:16]) {
		t.Fatal("short key verified")
	}
}

func TestSignedReleaseJSONRoundTrip(t *testing.T) {
	_, priv := genKey(t)
	sr := Sign(Release{Name: "mon", Vendor: "acme", Version: "1.0.0", Manifest: "PERM read_statistics"}, priv)
	data, err := json.Marshal(sr)
	if err != nil {
		t.Fatal(err)
	}
	var back SignedRelease
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Digest() != sr.Digest() {
		t.Fatal("digest changed across JSON round trip")
	}
	if string(back.Sig) != string(sr.Sig) {
		t.Fatal("signature changed across JSON round trip")
	}
}

func TestParseVersion(t *testing.T) {
	good := map[string]Version{
		"1.2.3":  {1, 2, 3},
		"0.0.0":  {0, 0, 0},
		" 2.0.1": {2, 0, 1},
	}
	for s, want := range good {
		v, err := ParseVersion(s)
		if err != nil {
			t.Errorf("ParseVersion(%q): %v", s, err)
		} else if v != want {
			t.Errorf("ParseVersion(%q) = %v, want %v", s, v, want)
		}
	}
	for _, s := range []string{"", "1.2", "1.2.3.4", "1.-2.3", "a.b.c", "1.2.x"} {
		if _, err := ParseVersion(s); err == nil {
			t.Errorf("ParseVersion(%q) accepted", s)
		}
	}
}

func TestVersionCompare(t *testing.T) {
	order := []string{"0.9.9", "1.0.0", "1.0.1", "1.2.0", "2.0.0"}
	for i := range order {
		for j := range order {
			vi, _ := ParseVersion(order[i])
			vj, _ := ParseVersion(order[j])
			want := cmpInt(i, j)
			if got := vi.Compare(vj); got != want {
				t.Errorf("%s.Compare(%s) = %d, want %d", order[i], order[j], got, want)
			}
		}
	}
}

func TestParseDigest(t *testing.T) {
	r := Release{Name: "m", Vendor: "v", Version: "1.0.0", Manifest: "PERM read_statistics"}
	d := r.Digest()
	back, err := ParseDigest(d.String())
	if err != nil {
		t.Fatal(err)
	}
	if back != d {
		t.Fatal("digest did not round-trip through hex")
	}
	if _, err := ParseDigest("zz"); err == nil {
		t.Fatal("bad hex accepted")
	}
	if _, err := ParseDigest("abcd"); err == nil {
		t.Fatal("short digest accepted")
	}
}
