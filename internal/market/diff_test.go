package market

import (
	"strings"
	"testing"

	"sdnshield/internal/core"
	"sdnshield/internal/permlang"
)

func parseSet(t *testing.T, src string) *core.Set {
	t.Helper()
	m, err := permlang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	s := core.NewSet()
	for _, p := range m.Permissions {
		s.Grant(p.Token, p.Filter)
	}
	return s
}

func entryFor(t *testing.T, entries []DiffEntry, token string) DiffEntry {
	t.Helper()
	for _, e := range entries {
		if e.Token == token {
			return e
		}
	}
	t.Fatalf("no diff entry for %s in %+v", token, entries)
	return DiffEntry{}
}

func TestDiffSetsClassification(t *testing.T) {
	oldSet := parseSet(t, `
PERM read_statistics
PERM insert_flow LIMITING IP_DST 10.0.0.0 MASK 255.0.0.0
PERM modify_flow LIMITING IP_DST 10.1.0.0 MASK 255.255.0.0
PERM network_access
`)
	newSet := parseSet(t, `
PERM read_statistics
PERM insert_flow LIMITING IP_DST 10.1.0.0 MASK 255.255.0.0
PERM modify_flow LIMITING IP_DST 10.0.0.0 MASK 255.0.0.0
PERM visible_topology
`)
	entries := DiffSets(oldSet, newSet)

	if e := entryFor(t, entries, "read_statistics"); e.Change != DiffUnchanged {
		t.Errorf("read_statistics = %q, want unchanged", e.Change)
	}
	// 10/8 -> 10.1/16 shrinks the admitted calls.
	if e := entryFor(t, entries, "insert_flow"); e.Change != DiffNarrowed {
		t.Errorf("insert_flow = %q, want narrowed", e.Change)
	}
	// 10.1/16 -> 10/8 grows them.
	if e := entryFor(t, entries, "modify_flow"); e.Change != DiffWidened {
		t.Errorf("modify_flow = %q, want widened", e.Change)
	}
	// network_access is the paper's alias for host_network.
	if e := entryFor(t, entries, "host_network"); e.Change != DiffRemoved {
		t.Errorf("host_network = %q, want removed", e.Change)
	}
	if e := entryFor(t, entries, "visible_topology"); e.Change != DiffAdded {
		t.Errorf("visible_topology = %q, want added", e.Change)
	}
}

func TestDiffSetsNilAndEmpty(t *testing.T) {
	s := parseSet(t, "PERM read_statistics")
	if entries := DiffSets(nil, nil); len(entries) != 0 {
		t.Fatalf("nil/nil diff = %+v", entries)
	}
	entries := DiffSets(nil, s)
	if len(entries) != 1 || entries[0].Change != DiffAdded {
		t.Fatalf("nil->set diff = %+v", entries)
	}
	entries = DiffSets(s, nil)
	if len(entries) != 1 || entries[0].Change != DiffRemoved {
		t.Fatalf("set->nil diff = %+v", entries)
	}
}

func TestDiffDeterministicOrder(t *testing.T) {
	// Grant order differs between the two sets; the diff must come out
	// in canonical token order regardless.
	a := core.NewSet()
	a.Grant(core.TokenProcessRuntime, nil)
	a.Grant(core.TokenInsertFlow, nil)
	b := core.NewSet()
	b.Grant(core.TokenReadStatistics, nil)
	b.Grant(core.TokenProcessRuntime, nil)

	first := DiffSets(a, b)
	for i := 0; i < 10; i++ {
		again := DiffSets(a, b)
		if len(again) != len(first) {
			t.Fatal("diff length varies")
		}
		for j := range first {
			if first[j] != again[j] {
				t.Fatalf("diff order varies: %+v vs %+v", first, again)
			}
		}
	}
	for i := 1; i < len(first); i++ {
		if first[i-1].Token >= first[i].Token {
			// Token names aren't alphabetical by ordinal, so compare via
			// the underlying token order instead: entries must follow
			// ascending core.Token order.
			break
		}
	}
}

func TestDiffReleasesThroughMarket(t *testing.T) {
	m, _, submit := marketEnv(t, "")
	d1 := submit(Release{Name: "mon", Vendor: "acme", Version: "1.0.0",
		Manifest: "PERM read_statistics\nPERM insert_flow LIMITING IP_DST 10.0.0.0 MASK 255.0.0.0"})
	d2 := submit(Release{Name: "mon", Vendor: "acme", Version: "1.1.0",
		Manifest: "PERM read_statistics\nPERM insert_flow LIMITING IP_DST 10.1.0.0 MASK 255.255.0.0\nPERM visible_topology"})

	report, entries, err := m.DiffReleases(d1, d2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(report, "1.0.0 -> 1.1.0") {
		t.Errorf("report header missing versions:\n%s", report)
	}
	if e := entryFor(t, entries, "insert_flow"); e.Change != DiffNarrowed {
		t.Errorf("insert_flow = %q", e.Change)
	}
	if e := entryFor(t, entries, "visible_topology"); e.Change != DiffAdded {
		t.Errorf("visible_topology = %q", e.Change)
	}

	// DiffLatest picks the two highest versions.
	latestReport, _, err := m.DiffLatest("mon")
	if err != nil {
		t.Fatal(err)
	}
	if latestReport != report {
		t.Error("DiffLatest differs from explicit top-two diff")
	}

	// Cross-app diffs are refused.
	dOther := submit(Release{Name: "other", Vendor: "acme", Version: "1.0.0", Manifest: "PERM read_statistics"})
	if _, _, err := m.DiffReleases(d1, dOther); err == nil {
		t.Fatal("cross-app diff accepted")
	}
	if _, _, err := m.DiffLatest("other"); err == nil {
		t.Fatal("single-release DiffLatest accepted")
	}
}
