package market

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"sdnshield/internal/jobs"
	"sdnshield/internal/obs"
)

// TestAsyncMarketEndToEnd drives the whole spine over real HTTP:
//
//  1. POST /market/install answers 202 with a job ID — nothing
//     reconciles on the request path;
//  2. the worker pipeline runs the install; polling /market/jobs/<id>
//     surfaces the verdict and the app goes active;
//  3. a follower replica ships the leader's release log, re-verifies
//     each package locally, and persists it to its own store;
//  4. a downstream registry federates from the leader with locally
//     provisioned keys and ends up with the same release.
//
// (The tampered-upstream and killed-worker halves of the acceptance
// scenario are TestTamperedUpstreamRejected and
// TestJobSurvivesManagerCrash.)
func TestAsyncMarketEndToEnd(t *testing.T) {
	reg, sign := newTestRegistry(t)
	rt := newFakeRuntime()
	m, err := New(reg, rt, Config{PolicySrc: testPolicy})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	m.SetLeaderLease(NewLeaderLease("leader-e2e", time.Minute))
	jm, err := jobs.Open(jobs.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = jm.Close() })
	m.AttachJobs(jm, 2)
	MountHTTP(m)
	srv := httptest.NewServer(obs.NewHandler(obs.Default(), nil))
	t.Cleanup(srv.Close)

	// 1: install over HTTP is asynchronous.
	sr := sign(Release{Name: "mon", Vendor: "acme", Version: "1.0.0",
		Manifest: "PERM read_statistics\nPERM insert_flow LIMITING IP_DST 10.1.0.0 MASK 255.255.0.0"})
	body, _ := json.Marshal(sr)
	resp, err := http.Post(srv.URL+"/market/install", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var acc jobAccepted
	if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || acc.JobID == 0 || acc.Poll == "" {
		t.Fatalf("install: status=%d body=%+v, want 202 with job ID", resp.StatusCode, acc)
	}

	// 2: the verdict becomes pollable and the app activates.
	var snap jobs.Snapshot
	waitCond(t, "job done over HTTP", func() bool {
		r, err := http.Get(srv.URL + acc.Poll)
		if err != nil {
			return false
		}
		defer r.Body.Close()
		if r.StatusCode != http.StatusOK {
			return false
		}
		if err := json.NewDecoder(r.Body).Decode(&snap); err != nil {
			return false
		}
		return snap.State == jobs.StateDone
	})
	var res InstallResult
	// Snapshot strips Payload/Result from the struct fields; re-fetch the
	// raw body for the inlined result.
	r, err := http.Get(srv.URL + acc.Poll)
	if err != nil {
		t.Fatal(err)
	}
	var raw struct {
		Result InstallResult `json:"result"`
	}
	if err := json.NewDecoder(r.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	res = raw.Result
	if res.Verdict != VerdictApproved || res.Status != StatusActive {
		t.Fatalf("polled result = %+v", res)
	}
	if rt.permsOf("mon") == nil {
		t.Fatal("pipeline did not activate permissions")
	}

	// 3: a replica follows the log and persists to its own store.
	followerDir := t.TempDir()
	follower := NewRegistry()
	rep := NewSyncer(follower, SyncConfig{
		Upstream: srv.URL, Mode: SyncReplica, Dir: followerDir, TrustUpstreamKeys: true,
	})
	if n, err := rep.SyncOnce(); err != nil || n != 1 {
		t.Fatalf("replica round = (%d, %v), want (1, nil)", n, err)
	}
	if follower.RootDigest() != reg.RootDigest() {
		t.Fatal("replica diverges from leader")
	}
	if ents, err := os.ReadDir(filepath.Join(followerDir, "releases")); err != nil || len(ents) != 1 {
		t.Fatalf("follower store = (%v, %v), want 1 release", ents, err)
	}

	// 4: a downstream registry federates with its own trust anchor.
	downstream := NewRegistry()
	pub, _ := reg.VendorKey("acme")
	if err := downstream.TrustVendor("acme", pub); err != nil {
		t.Fatal(err)
	}
	fed := NewSyncer(downstream, SyncConfig{Upstream: srv.URL, Mode: SyncFederate})
	if n, err := fed.SyncOnce(); err != nil || n != 1 {
		t.Fatalf("federation round = (%d, %v), want (1, nil)", n, err)
	}
	got, err := downstream.Release(sr.Digest())
	if err != nil {
		t.Fatal(err)
	}
	if got.Manifest != sr.Manifest {
		t.Fatal("federated release drifted from the original")
	}
	if !fed.Stats().InSync {
		t.Fatalf("federation stats = %+v", fed.Stats())
	}
}
