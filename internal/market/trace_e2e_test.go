package market

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"sdnshield/internal/jobs"
	"sdnshield/internal/obs"
	"sdnshield/internal/obs/span"
)

// TestInstallTraceEndToEnd is the tracing acceptance scenario: one
// async install over HTTP yields ONE trace at /trace/<corr> — the 202's
// correlation ID — whose spans cover the ingress request, the enqueue,
// the queue wait, the worker execution and every pipeline stage; a
// replica sync pull then extends the same trace across the node
// boundary (leader and follower share this process's collector, so
// both sides' spans land in one timeline).
func TestInstallTraceEndToEnd(t *testing.T) {
	reg, sign := newTestRegistry(t)
	rt := newFakeRuntime()
	m, err := New(reg, rt, Config{PolicySrc: testPolicy})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	m.SetLeaderLease(NewLeaderLease("leader-trace", time.Minute))
	jm, err := jobs.Open(jobs.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = jm.Close() })
	m.AttachJobs(jm, 2)
	MountHTTP(m)
	srv := httptest.NewServer(obs.NewHandler(obs.Default(), nil))
	t.Cleanup(srv.Close)

	sr := sign(Release{Name: "mon", Vendor: "acme", Version: "1.0.0",
		Manifest: "PERM read_statistics\nPERM insert_flow LIMITING IP_DST 10.1.0.0 MASK 255.255.0.0"})
	body, _ := json.Marshal(sr)
	resp, err := http.Post(srv.URL+"/market/install", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var acc jobAccepted
	if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || acc.Corr == 0 {
		t.Fatalf("install: status=%d body=%+v, want 202 with a correlation ID", resp.StatusCode, acc)
	}
	if want := fmt.Sprintf("/trace/%d", acc.Corr); acc.Trace != want {
		t.Fatalf("202 trace link = %q, want %q", acc.Trace, want)
	}

	waitCond(t, "traced install done", func() bool {
		r, err := http.Get(srv.URL + acc.Poll)
		if err != nil {
			return false
		}
		defer r.Body.Close()
		var snap jobs.Snapshot
		if json.NewDecoder(r.Body).Decode(&snap) != nil {
			return false
		}
		return snap.State == jobs.StateDone
	})

	// fetchTrace pulls /trace/<corr> and folds it into a name → count
	// map, asserting along the way that every span belongs to the trace.
	fetchTrace := func() map[string]int {
		t.Helper()
		r, err := http.Get(srv.URL + acc.Trace)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("GET %s status = %d", acc.Trace, r.StatusCode)
		}
		var got struct {
			TraceID uint64        `json:"trace_id"`
			Spans   []span.Record `json:"spans"`
		}
		if err := json.NewDecoder(r.Body).Decode(&got); err != nil {
			t.Fatal(err)
		}
		if got.TraceID != acc.Corr {
			t.Fatalf("trace ID = %d, want corr %d", got.TraceID, acc.Corr)
		}
		names := make(map[string]int)
		for _, sp := range got.Spans {
			if sp.TraceID != acc.Corr {
				t.Fatalf("span %q carries trace %d, want %d", sp.Name, sp.TraceID, acc.Corr)
			}
			names[sp.Name]++
		}
		return names
	}

	names := fetchTrace()
	for _, want := range []string{
		"http:market.install",        // ingress root
		"job:enqueue:market.install", // durable enqueue
		"job:queue_wait",             // backlog residency
		"job:exec:market.install",    // worker attempt
		"stage:verify",
		"stage:parse",
		"stage:reconcile",
		"stage:activate",
	} {
		if names[want] == 0 {
			t.Errorf("trace %d missing span %q (have %v)", acc.Corr, want, names)
		}
	}

	// A replica sync pull continues the SAME trace across the HTTP
	// boundary: the log entry carries the submission corr, the follower
	// admits under it, and the leader's serve side joins via the
	// propagated header.
	follower := NewRegistry()
	rep := NewSyncer(follower, SyncConfig{
		Upstream: srv.URL, Mode: SyncReplica, Dir: t.TempDir(), TrustUpstreamKeys: true,
	})
	if n, err := rep.SyncOnce(); err != nil || n != 1 {
		t.Fatalf("replica round = (%d, %v), want (1, nil)", n, err)
	}
	names = fetchTrace()
	if names["sync:admit"] == 0 {
		t.Errorf("trace missing the follower's sync:admit span (have %v)", names)
	}
	if names["serve:release"] == 0 {
		t.Errorf("trace missing the leader's serve:release span (have %v)", names)
	}
}

// TestTraceHeaderContinuesCallerTrace: a client that already holds a
// span context propagates it via X-Sdnshield-Trace, and the market
// continues that trace instead of minting a fresh correlation ID.
func TestTraceHeaderContinuesCallerTrace(t *testing.T) {
	reg, sign := newTestRegistry(t)
	m, err := New(reg, newFakeRuntime(), Config{PolicySrc: testPolicy})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	m.SetLeaderLease(NewLeaderLease("leader-hdr", time.Minute))
	MountHTTP(m)
	srv := httptest.NewServer(obs.NewHandler(obs.Default(), nil))
	t.Cleanup(srv.Close)

	caller := span.Root(4_441_777, "client:op")
	sr := sign(Release{Name: "mon", Vendor: "acme", Version: "1.0.0",
		Manifest: "PERM read_statistics\nPERM insert_flow LIMITING IP_DST 10.1.0.0 MASK 255.255.0.0"})
	body, _ := json.Marshal(sr)
	req, _ := http.NewRequest("POST", srv.URL+"/market/install", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(span.Header, caller.Context().String())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var res InstallResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	caller.End()
	if resp.StatusCode != http.StatusOK || res.Verdict != VerdictApproved {
		t.Fatalf("sync install = status %d %+v, want 200 approved", resp.StatusCode, res)
	}
	// No job spine attached: the install ran synchronously, and its
	// spans landed in the CALLER's trace — no fresh corr was minted.
	spans := span.DefaultCollector().Trace(4_441_777)
	names := make(map[string]int)
	var ingress *span.Record
	for i, sp := range spans {
		names[sp.Name]++
		if sp.Name == "http:market.install" {
			ingress = &spans[i]
		}
	}
	for _, want := range []string{"client:op", "http:market.install", "stage:verify", "stage:activate"} {
		if names[want] == 0 {
			t.Errorf("caller trace missing %q (have %v)", want, names)
		}
	}
	if ingress != nil && ingress.Parent != caller.Context().SpanID {
		t.Errorf("ingress span parent = %d, want the caller's span %d", ingress.Parent, caller.Context().SpanID)
	}
}
