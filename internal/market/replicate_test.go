package market

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sdnshield/internal/obs"
	"sdnshield/internal/obs/audit"
)

func TestLeaderLeaseEpochs(t *testing.T) {
	l := NewLeaderLease("node-a", 50*time.Millisecond)
	v := l.View()
	if v.Holder != "node-a" || v.Epoch != 1 || v.Expired {
		t.Fatalf("fresh lease = %+v", v)
	}
	// Renewal inside the TTL keeps the epoch.
	if v = l.Renew(); v.Epoch != 1 {
		t.Fatalf("in-TTL renew bumped epoch to %d", v.Epoch)
	}
	// A competing node cannot take a live lease.
	if _, ok := l.Acquire("node-b"); ok {
		t.Fatal("live lease acquired by another node")
	}
	time.Sleep(60 * time.Millisecond)
	if v = l.View(); !v.Expired {
		t.Fatal("lease did not expire")
	}
	// Expired lease renews under a bumped epoch — the visible gap.
	if v = l.Renew(); v.Epoch != 2 {
		t.Fatalf("post-expiry renew epoch = %d, want 2", v.Epoch)
	}
	time.Sleep(60 * time.Millisecond)
	v2, ok := l.Acquire("node-b")
	if !ok || v2.Holder != "node-b" || v2.Epoch != 3 {
		t.Fatalf("takeover = %+v ok=%v", v2, ok)
	}
}

// TestHeartbeatKeepsLeaseAlive: the leader's heartbeat renews inside
// the TTL; stopping it lets the lease expire on schedule.
func TestHeartbeatKeepsLeaseAlive(t *testing.T) {
	l := NewLeaderLease("node-a", 60*time.Millisecond)
	stop := l.Heartbeat()
	time.Sleep(150 * time.Millisecond)
	if v := l.View(); v.Expired || v.Epoch != 1 {
		t.Fatalf("heartbeated lease = %+v, want live at epoch 1", v)
	}
	stop()
	time.Sleep(80 * time.Millisecond)
	if v := l.View(); !v.Expired {
		t.Fatalf("lease after heartbeat stop = %+v, want expired", v)
	}
}

// TestReadsDoNotRenewLease: polling /market/lease and /market/log must
// not keep the lease fresh — otherwise a follower (or any monitoring
// probe) pins a dead leader's lease forever and a successor can never
// acquire it.
func TestReadsDoNotRenewLease(t *testing.T) {
	reg, sign := newTestRegistry(t)
	m, err := New(reg, newFakeRuntime(), Config{PolicySrc: testPolicy})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	if _, err := reg.Submit(sign(Release{Name: "mon", Vendor: "acme", Version: "1.0.0", Manifest: "PERM read_statistics"})); err != nil {
		t.Fatal(err)
	}
	lease := NewLeaderLease("old-leader", 50*time.Millisecond)
	m.SetLeaderLease(lease) // no heartbeat: the "leader" is effectively dead
	MountHTTP(m)
	srv := httptest.NewServer(obs.NewHandler(obs.Default(), nil))
	t.Cleanup(srv.Close)

	// Poll well past the TTL; each read must leave the expiry untouched.
	deadline := time.Now().Add(120 * time.Millisecond)
	for time.Now().Before(deadline) {
		for _, path := range []string{"/market/lease", "/market/log?after=0"} {
			resp, err := http.Get(srv.URL + path)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
		}
		time.Sleep(10 * time.Millisecond)
	}
	var view LeaseView
	resp, err := http.Get(srv.URL + "/market/lease")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !view.Expired {
		t.Fatalf("lease still live after polling past TTL: %+v", view)
	}
	if v, ok := lease.Acquire("new-leader"); !ok {
		t.Fatalf("takeover of an expired, polled lease failed: %+v", v)
	}
}

// leaderEnv builds a market with releases, a lease, and a live httptest
// server over its mounted routes.
func leaderEnv(t *testing.T) (*Market, *httptest.Server, func(r Release) *SignedRelease) {
	t.Helper()
	reg, sign := newTestRegistry(t)
	m, err := New(reg, newFakeRuntime(), Config{PolicySrc: testPolicy})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	m.SetLeaderLease(NewLeaderLease("leader-1", time.Minute))
	MountHTTP(m)
	srv := httptest.NewServer(obs.NewHandler(obs.Default(), nil))
	t.Cleanup(srv.Close)
	return m, srv, sign
}

func TestReplicaFollowsReleaseLog(t *testing.T) {
	m, srv, sign := leaderEnv(t)
	for _, v := range []string{"1.0.0", "1.1.0"} {
		if _, err := m.Registry().Submit(sign(Release{Name: "mon", Vendor: "acme", Version: v, Manifest: "PERM read_statistics"})); err != nil {
			t.Fatal(err)
		}
	}

	followerDir := t.TempDir()
	follower := NewRegistry()
	s := NewSyncer(follower, SyncConfig{
		Upstream: srv.URL, Mode: SyncReplica, Dir: followerDir, TrustUpstreamKeys: true,
	})
	n, err := s.SyncOnce()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("first round admitted %d, want 2", n)
	}
	if got, want := follower.RootDigest(), m.Registry().RootDigest(); got != want {
		t.Fatalf("root digests diverge after sync: %s vs %s", got, want)
	}
	st := s.Stats()
	if !st.InSync || st.LastSeq != 2 || st.LastEpoch == 0 {
		t.Fatalf("stats = %+v", st)
	}

	// New leader release: the next round ships only the suffix.
	if _, err := m.Registry().Submit(sign(Release{Name: "mon", Vendor: "acme", Version: "2.0.0", Manifest: "PERM read_statistics"})); err != nil {
		t.Fatal(err)
	}
	if n, err = s.SyncOnce(); err != nil || n != 1 {
		t.Fatalf("incremental round = (%d, %v), want (1, nil)", n, err)
	}

	// Admitted releases were persisted for restart durability.
	entries, err := os.ReadDir(filepath.Join(followerDir, "releases"))
	if err != nil || len(entries) != 3 {
		t.Fatalf("follower store holds %d releases (%v), want 3", len(entries), err)
	}

	// A restarted follower reloads from its own store, no upstream needed.
	reloaded := NewRegistry()
	pub, _ := m.Registry().VendorKey("acme")
	if err := reloaded.TrustVendor("acme", pub); err != nil {
		t.Fatal(err)
	}
	loaded, problems, err := LoadDir(followerDir, reloaded)
	if err != nil || len(problems) > 0 || loaded != 3 {
		t.Fatalf("reload = (%d, %v, %v)", loaded, problems, err)
	}
}

func TestFederationReverifiesAndRejectsUntrustedVendors(t *testing.T) {
	m, srv, sign := leaderEnv(t)
	if _, err := m.Registry().Submit(sign(Release{Name: "mon", Vendor: "acme", Version: "1.0.0", Manifest: "PERM read_statistics"})); err != nil {
		t.Fatal(err)
	}
	// A second vendor the downstream does NOT provision.
	pubEvil, privEvil := genKey(t)
	if err := m.Registry().TrustVendor("shady", pubEvil); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Registry().Submit(Sign(Release{Name: "tap", Vendor: "shady", Version: "1.0.0", Manifest: "PERM read_statistics"}, privEvil)); err != nil {
		t.Fatal(err)
	}

	// Downstream trusts only acme, provisioned locally — keys are NOT
	// imported from the upstream in federate mode.
	downstream := NewRegistry()
	pub, _ := m.Registry().VendorKey("acme")
	if err := downstream.TrustVendor("acme", pub); err != nil {
		t.Fatal(err)
	}
	before := audit.Default().Query(audit.Filter{})
	var afterSeq uint64
	if len(before) > 0 {
		afterSeq = before[len(before)-1].Seq
	}
	s := NewSyncer(downstream, SyncConfig{Upstream: srv.URL, Mode: SyncFederate})
	n, err := s.SyncOnce()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("admitted %d, want 1 (only the trusted vendor's release)", n)
	}
	st := s.Stats()
	if st.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", st.Rejected)
	}
	if st.InSync {
		t.Fatal("a filtering federation boundary must not claim full sync")
	}
	if len(downstream.Releases("tap")) != 0 {
		t.Fatal("untrusted vendor's release crossed the federation boundary")
	}
	// The refusal is audited as a federation event.
	waitCond(t, "federation reject audit event", func() bool {
		evs := audit.Default().Query(audit.Filter{
			Kind: audit.KindFederation, Verdict: audit.VerdictReject, AfterSeq: afterSeq,
		})
		for _, ev := range evs {
			if strings.Contains(ev.Detail, "unknown vendor") {
				return true
			}
		}
		return false
	})
}

// TestTamperedUpstreamRejected serves a release whose body does not hash
// to its claimed digest — a poisoned mirror — and proves the follower
// refuses it with a correlated audit trail while the stream continues.
func TestTamperedUpstreamRejected(t *testing.T) {
	pub, priv := genKey(t)
	good := Sign(Release{Name: "mon", Vendor: "acme", Version: "1.0.0", Manifest: "PERM read_statistics"}, priv)
	tampered := *good
	tampered.Manifest = "PERM network_access" // body no longer matches its digest claim

	mux := http.NewServeMux()
	mux.HandleFunc("/market/lease", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "no lease", http.StatusNotFound)
	})
	mux.HandleFunc("/market/log", func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(map[string]interface{}{
			"last_seq": 1,
			"entries":  []LogEntry{{Seq: 1, Digest: good.Digest().String(), App: "mon", Version: "1.0.0"}},
		})
	})
	mux.HandleFunc("/market/release", func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(&tampered)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	follower := NewRegistry()
	if err := follower.TrustVendor("acme", pub); err != nil {
		t.Fatal(err)
	}
	var afterSeq uint64
	if evs := audit.Default().Query(audit.Filter{}); len(evs) > 0 {
		afterSeq = evs[len(evs)-1].Seq
	}
	s := NewSyncer(follower, SyncConfig{Upstream: srv.URL, Mode: SyncReplica})
	n, err := s.SyncOnce()
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("admitted %d tampered releases, want 0", n)
	}
	if len(follower.Digests()) != 0 {
		t.Fatal("tampered release entered the registry")
	}
	st := s.Stats()
	if st.Rejected != 1 || st.LastSeq != 1 {
		t.Fatalf("stats = %+v (stream must advance past the poisoned entry)", st)
	}
	var corr uint64
	waitCond(t, "tamper reject audit event", func() bool {
		evs := audit.Default().Query(audit.Filter{
			Kind: audit.KindFederation, Verdict: audit.VerdictReject, AfterSeq: afterSeq,
		})
		for _, ev := range evs {
			if strings.Contains(ev.Detail, "tampered") {
				corr = ev.Corr
				return true
			}
		}
		return false
	})
	if corr == 0 {
		t.Fatal("federation reject event carries no correlation ID")
	}
}

// TestPersistFailureStillAdmits: a release that enters the registry but
// cannot be written to the follower store is admitted exactly once in
// the stats — not double-counted as rejected — with a distinct
// persist_failed audit event.
func TestPersistFailureStillAdmits(t *testing.T) {
	m, srv, sign := leaderEnv(t)
	if _, err := m.Registry().Submit(sign(Release{Name: "mon", Vendor: "acme", Version: "1.0.0", Manifest: "PERM read_statistics"})); err != nil {
		t.Fatal(err)
	}

	// Dir is a plain file, so SaveRelease's MkdirAll fails every time.
	notADir := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(notADir, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	var afterSeq uint64
	if evs := audit.Default().Query(audit.Filter{}); len(evs) > 0 {
		afterSeq = evs[len(evs)-1].Seq
	}
	follower := NewRegistry()
	s := NewSyncer(follower, SyncConfig{
		Upstream: srv.URL, Mode: SyncReplica, Dir: notADir, TrustUpstreamKeys: true,
	})
	n, err := s.SyncOnce()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("admitted %d, want 1", n)
	}
	st := s.Stats()
	if st.Admitted != 1 || st.Rejected != 0 {
		t.Fatalf("stats = %+v, want admitted 1 / rejected 0", st)
	}
	if len(follower.Digests()) != 1 {
		t.Fatal("release did not enter the follower registry")
	}
	waitCond(t, "persist_failed audit event", func() bool {
		evs := audit.Default().Query(audit.Filter{
			Kind: audit.KindFederation, Verdict: audit.VerdictPersistFailed, AfterSeq: afterSeq,
		})
		return len(evs) == 1
	})
}

func TestSyncerRefusesLeaseEpochRegression(t *testing.T) {
	epoch := uint64(5)
	mux := http.NewServeMux()
	mux.HandleFunc("/market/lease", func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(LeaseView{Holder: "x", Epoch: epoch})
	})
	mux.HandleFunc("/market/log", func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(map[string]interface{}{"last_seq": 0, "entries": []LogEntry{}})
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	s := NewSyncer(NewRegistry(), SyncConfig{Upstream: srv.URL, Mode: SyncReplica})
	if _, err := s.SyncOnce(); err != nil {
		t.Fatal(err)
	}
	epoch = 3 // a stale leader reappears
	if _, err := s.SyncOnce(); err == nil || !strings.Contains(err.Error(), "regressed") {
		t.Fatalf("err = %v, want epoch regression refusal", err)
	}
}
