package market

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"sdnshield/internal/jobs"
	"sdnshield/internal/obs/span"
)

// asyncEnv wires a market onto a job spine with fast retry timings.
// dir may be "" for an ephemeral (memory-only) queue.
func asyncEnv(t *testing.T, dir string) (*Market, *jobs.Manager, *fakeRuntime, func(r Release) Digest) {
	t.Helper()
	reg, sign := newTestRegistry(t)
	rt := newFakeRuntime()
	m, err := New(reg, rt, Config{
		PolicySrc:     testPolicy,
		Probation:     80 * time.Millisecond,
		ProbationPoll: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	jm, err := jobs.Open(jobs.Config{
		Dir: dir, MaxAttempts: 3,
		Backoff: 2 * time.Millisecond, MaxBackoff: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = jm.Close() })
	m.AttachJobs(jm, 2)
	submit := func(r Release) Digest {
		sr := sign(r)
		d, err := reg.Submit(sr)
		if err != nil {
			t.Fatalf("submit %s@%s: %v", r.Name, r.Version, err)
		}
		return d
	}
	return m, jm, rt, submit
}

// waitJob polls until the job leaves the pending/running states.
func waitJob(t *testing.T, jm *jobs.Manager, id uint64) jobs.Snapshot {
	t.Helper()
	var snap jobs.Snapshot
	waitCond(t, "job settled", func() bool {
		s, ok := jm.Status(id)
		if !ok {
			return false
		}
		snap = s
		return s.State == jobs.StateDone || s.State == jobs.StateDead
	})
	return snap
}

func TestJobInstallRunsPipeline(t *testing.T) {
	m, jm, rt, submit := asyncEnv(t, "")
	d := submit(Release{Name: "mon", Vendor: "acme", Version: "1.0.0",
		Manifest: "PERM read_statistics\nPERM insert_flow LIMITING IP_DST 10.1.0.0 MASK 255.255.0.0"})

	id, err := m.SubmitJob(QueueInstall, JobRequest{Digest: d.String()}, 0, span.Context{})
	if err != nil {
		t.Fatal(err)
	}
	snap := waitJob(t, jm, id)
	if snap.State != jobs.StateDone {
		t.Fatalf("job state = %s (err %q)", snap.State, snap.Error)
	}
	var res InstallResult
	if err := json.Unmarshal(snap.Result, &res); err != nil {
		t.Fatalf("result not an InstallResult: %v (%s)", err, snap.Result)
	}
	if res.Verdict != VerdictApproved || res.Status != StatusActive {
		t.Fatalf("verdict=%q status=%q", res.Verdict, res.Status)
	}
	if rt.permsOf("mon") == nil {
		t.Fatal("worker pipeline did not activate permissions")
	}
}

func TestJobRejectedDeadLettersWithReason(t *testing.T) {
	m, jm, rt, submit := asyncEnv(t, "")
	d := submit(Release{Name: "mon", Vendor: "acme", Version: "1.0.0",
		Manifest: "PERM process_runtime"})

	id, err := m.SubmitJob(QueueInstall, JobRequest{Digest: d.String()}, 0, span.Context{})
	if err != nil {
		t.Fatal(err)
	}
	snap := waitJob(t, jm, id)
	if snap.State != jobs.StateDead {
		t.Fatalf("rejected install job state = %s, want dead", snap.State)
	}
	// A deterministic rejection must not burn the retry budget.
	if snap.Attempts != 1 {
		t.Fatalf("rejection took %d attempts, want 1", snap.Attempts)
	}
	if !strings.Contains(snap.Error, "rejected") {
		t.Fatalf("dead job reason = %q, want the rejection", snap.Error)
	}
	if rt.permsOf("mon") != nil {
		t.Fatal("rejected release reached the runtime")
	}
	if dead := jm.Dead(QueueInstall); len(dead) != 1 || dead[0].ID != id {
		t.Fatalf("dead letter queue = %+v", dead)
	}
}

func TestJobUnknownDigestDeadLettersImmediately(t *testing.T) {
	m, jm, _, _ := asyncEnv(t, "")
	id, err := m.SubmitJob(QueueInstall, JobRequest{Digest: PolicyDigest("nope").String()}, 0, span.Context{})
	if err != nil {
		t.Fatal(err)
	}
	snap := waitJob(t, jm, id)
	if snap.State != jobs.StateDead || snap.Attempts != 1 {
		t.Fatalf("state=%s attempts=%d, want dead after 1", snap.State, snap.Attempts)
	}
}

func TestJobRecomputeSweepsRegistry(t *testing.T) {
	m, jm, _, submit := asyncEnv(t, "")
	submit(Release{Name: "mon", Vendor: "acme", Version: "1.0.0", Manifest: "PERM read_statistics"})
	submit(Release{Name: "mon", Vendor: "acme", Version: "1.1.0", Manifest: "PERM read_statistics"})
	submit(Release{Name: "probe", Vendor: "acme", Version: "2.0.0", Manifest: "PERM read_statistics"})

	id, err := m.SubmitJob(QueueRecompute, JobRequest{}, 0, span.Context{})
	if err != nil {
		t.Fatal(err)
	}
	snap := waitJob(t, jm, id)
	if snap.State != jobs.StateDone {
		t.Fatalf("recompute job state = %s (err %q)", snap.State, snap.Error)
	}
	var res struct {
		Recomputed int `json:"recomputed"`
	}
	if err := json.Unmarshal(snap.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.Recomputed != 3 {
		t.Fatalf("recomputed %d releases, want 3", res.Recomputed)
	}
	// Every verdict is now cached: installing any release is a hit.
	if m.Cache().Len() != 3 {
		t.Fatalf("cache holds %d verdicts, want 3", m.Cache().Len())
	}
}

func TestSubmitJobWithoutManager(t *testing.T) {
	m, _, submit := marketEnv(t, "")
	d := submit(Release{Name: "mon", Vendor: "acme", Version: "1.0.0", Manifest: "PERM read_statistics"})
	if _, err := m.SubmitJob(QueueInstall, JobRequest{Digest: d.String()}, 0, span.Context{}); !errors.Is(err, ErrNoJobs) {
		t.Fatalf("err = %v, want ErrNoJobs", err)
	}
}

// TestJobSurvivesManagerCrash proves the market's durability end of the
// at-least-once contract: a job enqueued before a crash (no handler ran
// yet) replays on reopen and completes once workers attach.
func TestJobSurvivesManagerCrash(t *testing.T) {
	dir := t.TempDir()
	reg, sign := newTestRegistry(t)
	m, err := New(reg, newFakeRuntime(), Config{PolicySrc: testPolicy})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	sr := sign(Release{Name: "mon", Vendor: "acme", Version: "1.0.0", Manifest: "PERM read_statistics"})
	d, err := reg.Submit(sr)
	if err != nil {
		t.Fatal(err)
	}

	jm, err := jobs.Open(jobs.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	// No handler registered: the job sits pending, durably.
	payload, _ := json.Marshal(JobRequest{Digest: d.String()})
	id, err := jm.Enqueue(QueueInstall, payload)
	if err != nil {
		t.Fatal(err)
	}
	jm.Kill() // crash: nothing acked

	jm2, err := jobs.Open(jobs.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = jm2.Close() })
	m.AttachJobs(jm2, 1)
	snap := waitJob(t, jm2, id)
	if snap.State != jobs.StateDone {
		t.Fatalf("replayed job state = %s (err %q)", snap.State, snap.Error)
	}
	var res InstallResult
	if err := json.Unmarshal(snap.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusActive {
		t.Fatalf("replayed install status = %q", res.Status)
	}
}
