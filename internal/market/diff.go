package market

import (
	"fmt"
	"strings"

	"sdnshield/internal/core"
)

// DiffChange classifies one token's transition between two releases.
type DiffChange string

// Diff change kinds. "narrowed"/"widened" are decided semantically with
// Algorithm 1 (filter inclusion), not textually, so a rewritten filter
// that grants the same behaviour reports unchanged.
const (
	DiffAdded     DiffChange = "added"
	DiffRemoved   DiffChange = "removed"
	DiffNarrowed  DiffChange = "narrowed"
	DiffWidened   DiffChange = "widened"
	DiffChanged   DiffChange = "changed"
	DiffUnchanged DiffChange = "unchanged"
)

// DiffEntry is one token's row in a permission diff report.
type DiffEntry struct {
	Token  string     `json:"token"`
	Change DiffChange `json:"change"`
	// Old and New render the filter bounding the token in each release
	// ("" when the token is absent; "<unconditional>" for a bare grant).
	Old string `json:"old,omitempty"`
	New string `json:"new,omitempty"`
}

// DiffSets compares two permission sets token by token, in canonical
// (ascending token) order so the report is stable across runs. Either
// set may be nil (treated as empty).
func DiffSets(oldSet, newSet *core.Set) []DiffEntry {
	if oldSet == nil {
		oldSet = core.NewSet()
	}
	if newSet == nil {
		newSet = core.NewSet()
	}
	seen := make(map[core.Token]bool)
	var tokens []core.Token
	for _, t := range oldSet.SortedTokens() {
		seen[t] = true
		tokens = append(tokens, t)
	}
	for _, t := range newSet.SortedTokens() {
		if !seen[t] {
			tokens = append(tokens, t)
		}
	}
	// Merge keeps ascending order: both inputs are sorted and the
	// second pass only appends tokens absent from the first.
	sortTokens(tokens)

	var out []DiffEntry
	for _, t := range tokens {
		oldF, inOld := oldSet.FilterFor(t)
		newF, inNew := newSet.FilterFor(t)
		e := DiffEntry{Token: t.String()}
		switch {
		case !inOld:
			e.Change, e.New = DiffAdded, renderFilter(newF)
		case !inNew:
			e.Change, e.Old = DiffRemoved, renderFilter(oldF)
		default:
			e.Old, e.New = renderFilter(oldF), renderFilter(newF)
			e.Change = classify(oldF, newF)
		}
		out = append(out, e)
	}
	return out
}

func sortTokens(tokens []core.Token) {
	for i := 1; i < len(tokens); i++ {
		for j := i; j > 0 && tokens[j] < tokens[j-1]; j-- {
			tokens[j], tokens[j-1] = tokens[j-1], tokens[j]
		}
	}
}

// classify decides the semantic direction of a filter change via
// Algorithm 1 in both directions. Comparison failures (filters outside
// the comparable fragment) degrade to the generic "changed".
func classify(oldF, newF core.Expr) DiffChange {
	newIncludesOld, err1 := includesFilter(newF, oldF)
	oldIncludesNew, err2 := includesFilter(oldF, newF)
	if err1 != nil || err2 != nil {
		return DiffChanged
	}
	switch {
	case newIncludesOld && oldIncludesNew:
		return DiffUnchanged
	case oldIncludesNew:
		return DiffNarrowed
	case newIncludesOld:
		return DiffWidened
	default:
		return DiffChanged
	}
}

// includesFilter reports whether filter a admits every call filter b
// admits, treating nil as "everything".
func includesFilter(a, b core.Expr) (bool, error) {
	if a == nil {
		return true, nil
	}
	if b == nil {
		return false, nil // a is conditional, b unconditional
	}
	return core.Includes(a, b)
}

func renderFilter(f core.Expr) string {
	if f == nil {
		return "<unconditional>"
	}
	return f.String()
}

// FormatDiff renders a diff report for administrator review.
func FormatDiff(app, fromVersion, toVersion string, entries []DiffEntry) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "permission diff for %s: %s -> %s\n", app, orNone(fromVersion), orNone(toVersion))
	if len(entries) == 0 {
		sb.WriteString("  (no permissions in either release)\n")
		return sb.String()
	}
	for _, e := range entries {
		switch e.Change {
		case DiffAdded:
			fmt.Fprintf(&sb, "  + %-18s %s (%s)\n", e.Token, e.New, e.Change)
		case DiffRemoved:
			fmt.Fprintf(&sb, "  - %-18s %s (%s)\n", e.Token, e.Old, e.Change)
		case DiffUnchanged:
			fmt.Fprintf(&sb, "    %-18s %s\n", e.Token, e.New)
		default:
			fmt.Fprintf(&sb, "  ~ %-18s %s -> %s (%s)\n", e.Token, e.Old, e.New, e.Change)
		}
	}
	return sb.String()
}

func orNone(v string) string {
	if v == "" {
		return "(none)"
	}
	return v
}
