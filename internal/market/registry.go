package market

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"

	"sdnshield/internal/obs/audit"
	"sdnshield/internal/permlang"
)

// Provenance errors. They are distinct sentinels so callers (and the
// e2e suite) can assert a package was rejected for the right reason —
// before any reconciliation ran.
var (
	// ErrUnknownVendor reports a package from a vendor with no trusted key.
	ErrUnknownVendor = errors.New("market: unknown vendor (no trusted key)")
	// ErrBadSignature reports a signature that does not verify — a forged
	// or tampered package.
	ErrBadSignature = errors.New("market: signature verification failed")
	// ErrDuplicateRelease reports a (name, version) pair already stored
	// with different content.
	ErrDuplicateRelease = errors.New("market: release version already exists with different content")
	// ErrUnknownRelease reports a lookup of a digest the registry has
	// never accepted.
	ErrUnknownRelease = errors.New("market: unknown release")
)

// Registry stores trusted vendor keys and the releases that verified
// against them. It is the market's provenance gate: nothing enters the
// install pipeline without a valid signature from a trusted key, and
// every stored release is content-addressed so later tampering is
// detectable by re-hashing.
type Registry struct {
	mu       sync.RWMutex
	keys     map[string]ed25519.PublicKey
	byDigest map[Digest]*SignedRelease
	byApp    map[string][]*SignedRelease // sorted by semver, ascending
	// log is the append-only release log: one entry per accepted
	// release, in admission order. Followers replicate by shipping the
	// suffix after their last applied sequence number.
	log []LogEntry
}

// LogEntry is one release-log record: the replication unit the leader
// ships to followers. The digest is the content address — the follower
// fetches and re-verifies the full package, so the log itself carries
// no trust.
type LogEntry struct {
	Seq     uint64 `json:"seq"`
	Digest  string `json:"digest"`
	App     string `json:"app"`
	Version string `json:"version"`
	// Corr is the correlation/trace ID of the submission that admitted
	// this release (0 for pre-tracing entries). Followers continue the
	// same trace when they pull the entry, so one ID follows a release
	// across node boundaries.
	Corr uint64 `json:"corr,omitempty"`
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		keys:     make(map[string]ed25519.PublicKey),
		byDigest: make(map[Digest]*SignedRelease),
		byApp:    make(map[string][]*SignedRelease),
	}
}

// TrustVendor installs (or replaces) a vendor's public key.
func (r *Registry) TrustVendor(vendor string, pub ed25519.PublicKey) error {
	if len(pub) != ed25519.PublicKeySize {
		return fmt.Errorf("market: bad public key size %d for vendor %q", len(pub), vendor)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.keys[vendor] = append(ed25519.PublicKey(nil), pub...)
	return nil
}

// VendorKey returns a trusted vendor's public key.
func (r *Registry) VendorKey(vendor string) (ed25519.PublicKey, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	pub, ok := r.keys[vendor]
	return pub, ok
}

// Vendors lists the trusted vendor names, sorted.
func (r *Registry) Vendors() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.keys))
	for v := range r.keys {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Submit verifies a signed package and stores it. The provenance gate
// runs in order: trusted vendor key, Ed25519 signature over the
// canonical encoding, well-formed semver, parseable manifest. Rejected
// packages leave an audit event and never reach reconciliation.
func (r *Registry) Submit(sr *SignedRelease) (Digest, error) {
	return r.SubmitTraced(sr, 0)
}

// SubmitTraced is Submit under an existing operation identity: corr
// stamps the audit events and the release-log entry, so the submission,
// the async install it feeds, and any follower pulls all share one
// trace ID. corr 0 means untraced.
func (r *Registry) SubmitTraced(sr *SignedRelease, corr uint64) (Digest, error) {
	digest := sr.Digest()
	if err := r.vet(sr); err != nil {
		mSubmitRejects.Inc()
		if audit.On() {
			audit.Emit(audit.Event{
				Kind: audit.KindMarket, Verdict: audit.VerdictReject,
				App: sr.Name, Op: "submit", Corr: corr,
				Detail: fmt.Sprintf("release %s@%s from %q: %v", sr.Name, sr.Version, sr.Vendor, err),
			})
		}
		return digest, err
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byDigest[digest]; ok {
		return digest, nil // idempotent resubmission of identical content
	}
	for _, prev := range r.byApp[sr.Name] {
		if prev.Version == sr.Version {
			return digest, fmt.Errorf("%w: %s@%s", ErrDuplicateRelease, sr.Name, sr.Version)
		}
	}
	stored := *sr
	stored.Sig = append(HexBytes(nil), sr.Sig...)
	r.byDigest[digest] = &stored
	releases := append(r.byApp[sr.Name], &stored)
	sort.SliceStable(releases, func(i, j int) bool {
		vi, _ := ParseVersion(releases[i].Version)
		vj, _ := ParseVersion(releases[j].Version)
		return vi.Compare(vj) < 0
	})
	r.byApp[sr.Name] = releases
	r.log = append(r.log, LogEntry{
		Seq: uint64(len(r.log)) + 1, Digest: digest.String(), App: sr.Name, Version: sr.Version,
		Corr: corr,
	})
	mSubmits.Inc()
	if audit.On() {
		audit.Emit(audit.Event{
			Kind: audit.KindMarket, Verdict: audit.VerdictInstall,
			App: sr.Name, Op: "submit", Corr: corr,
			Detail: fmt.Sprintf("release %s@%s from %q accepted (digest %s)", sr.Name, sr.Version, sr.Vendor, digest),
		})
	}
	return digest, nil
}

// vet runs the provenance checks without touching the store.
func (r *Registry) vet(sr *SignedRelease) error {
	pub, ok := r.VendorKey(sr.Vendor)
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownVendor, sr.Vendor)
	}
	if !sr.VerifySignature(pub) {
		return ErrBadSignature
	}
	if _, err := ParseVersion(sr.Version); err != nil {
		return err
	}
	if _, err := permlang.Parse(sr.Manifest); err != nil {
		return fmt.Errorf("market: manifest does not parse: %w", err)
	}
	return nil
}

// Release returns a stored release by digest, re-verifying its content
// address so in-memory tampering cannot survive a lookup.
func (r *Registry) Release(d Digest) (*SignedRelease, error) {
	r.mu.RLock()
	sr, ok := r.byDigest[d]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownRelease, d)
	}
	if sr.Digest() != d {
		return nil, ErrBadSignature
	}
	return sr, nil
}

// Releases lists an app's stored releases in ascending version order.
func (r *Registry) Releases(app string) []*SignedRelease {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]*SignedRelease(nil), r.byApp[app]...)
}

// Latest returns an app's highest-versioned release.
func (r *Registry) Latest(app string) (*SignedRelease, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	rel := r.byApp[app]
	if len(rel) == 0 {
		return nil, false
	}
	return rel[len(rel)-1], true
}

// LogAfter returns up to max release-log entries with Seq > seq (max <=
// 0 means all). The log is append-only, so repeated calls with the last
// returned Seq stream the registry's admission history exactly once.
func (r *Registry) LogAfter(seq uint64, max int) []LogEntry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if seq >= uint64(len(r.log)) {
		return nil
	}
	tail := r.log[seq:]
	if max > 0 && len(tail) > max {
		tail = tail[:max]
	}
	return append([]LogEntry(nil), tail...)
}

// LastSeq returns the newest release-log sequence number (0 when empty).
func (r *Registry) LastSeq() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return uint64(len(r.log))
}

// Digests lists every stored release's content address, sorted — the
// anti-entropy comparison set.
func (r *Registry) Digests() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.byDigest))
	for d := range r.byDigest {
		out = append(out, d.String())
	}
	sort.Strings(out)
	return out
}

// RootDigest hashes the sorted digest set into one comparison value:
// two registries with equal roots hold identical release sets, so an
// anti-entropy sweep is one GET when nothing diverged.
func (r *Registry) RootDigest() string {
	h := sha256.New()
	h.Write([]byte("sdnshield-registry-root-v1"))
	for _, d := range r.Digests() {
		h.Write([]byte{0})
		h.Write([]byte(d))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Apps lists the app names with at least one stored release, sorted.
func (r *Registry) Apps() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.byApp))
	for name := range r.byApp {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
