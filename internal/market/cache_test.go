package market

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"sdnshield/internal/core"
)

// heavyManifest builds a manifest whose insert_flow filter is a wide OR
// of IP ranges, so Algorithm 1 has real CNF/DNF work to do.
func heavyManifest(n int) string {
	var b strings.Builder
	b.WriteString("PERM read_statistics LIMITING PORT_LEVEL\n")
	b.WriteString("PERM visible_topology\n")
	b.WriteString("PERM insert_flow LIMITING ")
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteString(" OR ")
		}
		fmt.Fprintf(&b, "IP_DST 10.%d.0.0 MASK 255.255.0.0", i)
	}
	b.WriteString("\n")
	return b.String()
}

// heavyPolicy bounds the app's insert_flow to a strict subset of the
// manifest's ranges, so reconciliation both runs the expensive inclusion
// comparison and exercises the MEET repair path.
func heavyPolicy(app string, n int) string {
	var b strings.Builder
	b.WriteString("LET Bound = { PERM read_statistics PERM visible_topology PERM insert_flow LIMITING ")
	for i := 0; i < n-2; i++ {
		if i > 0 {
			b.WriteString(" OR ")
		}
		fmt.Fprintf(&b, "IP_DST 10.%d.0.0 MASK 255.255.0.0", i)
	}
	b.WriteString(" }\nASSERT " + app + " <= Bound\n")
	return b.String()
}

func heavyMarket(t testing.TB, n int) (*Market, *SignedRelease) {
	t.Helper()
	pub, priv := genKey(t)
	reg := NewRegistry()
	if err := reg.TrustVendor("acme", pub); err != nil {
		t.Fatal(err)
	}
	sr := Sign(Release{Name: "heavyapp", Vendor: "acme", Version: "1.0.0",
		Manifest: heavyManifest(n)}, priv)
	if _, err := reg.Submit(sr); err != nil {
		t.Fatal(err)
	}
	m, err := New(reg, nil, Config{PolicySrc: heavyPolicy("heavyapp", n)})
	if err != nil {
		t.Fatal(err)
	}
	return m, sr
}

func TestPolicyDigestDistinguishesPolicies(t *testing.T) {
	a := PolicyDigest("ASSERT EITHER { PERM insert_flow } OR { PERM network_access }")
	b := PolicyDigest("ASSERT EITHER { PERM insert_flow } OR { PERM read_statistics }")
	if a == b {
		t.Fatal("different policies share a digest")
	}
	if PolicyDigest("") == PolicyDigest("\x00") {
		t.Fatal("empty-policy digest collides")
	}
}

func TestVerdictCacheHitMissCounters(t *testing.T) {
	c := NewVerdictCache()
	rel := Release{Name: "m", Vendor: "v", Version: "1.0.0", Manifest: "PERM read_statistics"}
	mk := rel.Digest()
	pol := PolicyDigest("")

	h0, m0 := c.Stats()
	if _, ok := c.Get(mk, pol); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Put(mk, pol, VerdictApproved, nil, core.NewSet(), core.NewSet())
	if _, ok := c.Get(mk, pol); !ok {
		t.Fatal("warm cache reported a miss")
	}
	h1, m1 := c.Stats()
	if h1-h0 != 1 || m1-m0 != 1 {
		t.Fatalf("counter deltas hits=%d misses=%d, want 1 and 1", h1-h0, m1-m0)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestVerdictCacheIsolatesStoredSets(t *testing.T) {
	c := NewVerdictCache()
	rel := Release{Name: "m", Vendor: "v", Version: "1.0.0", Manifest: "PERM read_statistics"}
	mk := rel.Digest()
	pol := PolicyDigest("")

	eff := core.NewSet()
	eff.Grant(core.TokenReadStatistics, nil)
	c.Put(mk, pol, VerdictApproved, nil, eff, eff)

	// Mutating the caller's set after Put must not reach the cache.
	eff.Grant(core.TokenInsertFlow, nil)
	cv, _ := c.Get(mk, pol)
	if cv.Effective().Has(core.TokenInsertFlow) {
		t.Fatal("cache entry aliased the caller's set")
	}
	// Mutating an accessor's result must not either.
	got := cv.Effective()
	got.Grant(core.TokenProcessRuntime, nil)
	cv2, _ := c.Get(mk, pol)
	if cv2.Effective().Has(core.TokenProcessRuntime) {
		t.Fatal("accessor leaked a mutable reference into the cache")
	}
}

func TestReconcileReleaseMemoizes(t *testing.T) {
	m, sr := heavyMarket(t, 8)
	cv1, hit1, err := m.reconcileRelease(sr)
	if err != nil {
		t.Fatal(err)
	}
	if hit1 {
		t.Fatal("first reconciliation reported a cache hit")
	}
	if cv1.Verdict != VerdictRepaired {
		t.Fatalf("verdict = %q, want repaired", cv1.Verdict)
	}
	cv2, hit2, err := m.reconcileRelease(sr)
	if err != nil {
		t.Fatal(err)
	}
	if !hit2 {
		t.Fatal("second reconciliation missed the cache")
	}
	if cv2 != cv1 {
		t.Fatal("cache returned a different entry for the same pair")
	}
	// The repaired set must sit inside the boundary: it lost the ranges
	// the policy excluded.
	same, err := cv1.Effective().Equal(cv1.Requested())
	if err != nil {
		t.Fatal(err)
	}
	if same {
		t.Fatal("repair did not narrow the requested set")
	}
}

// TestCacheHitSpeedup is the acceptance check: replaying a memoized
// verdict must be at least an order of magnitude faster than running
// parse + Algorithm 1.
func TestCacheHitSpeedup(t *testing.T) {
	m, sr := heavyMarket(t, 16)
	const rounds = 50

	start := time.Now()
	for i := 0; i < rounds; i++ {
		m.cache = NewVerdictCache() // force the full pipeline
		if _, hit, err := m.reconcileRelease(sr); err != nil || hit {
			t.Fatalf("miss round: hit=%v err=%v", hit, err)
		}
	}
	missPer := time.Since(start) / rounds

	if _, _, err := m.reconcileRelease(sr); err != nil { // warm
		t.Fatal(err)
	}
	start = time.Now()
	for i := 0; i < rounds; i++ {
		if _, hit, err := m.reconcileRelease(sr); err != nil || !hit {
			t.Fatalf("hit round: hit=%v err=%v", hit, err)
		}
	}
	hitPer := time.Since(start) / rounds

	if hitPer <= 0 {
		hitPer = 1
	}
	ratio := float64(missPer) / float64(hitPer)
	t.Logf("miss %v/op, hit %v/op, speedup %.0fx", missPer, hitPer, ratio)
	if ratio < 10 {
		t.Fatalf("cache hit speedup %.1fx, want >= 10x (miss %v, hit %v)", ratio, missPer, hitPer)
	}
}

func BenchmarkReconcileVerdictMiss(b *testing.B) {
	m, sr := heavyMarket(b, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.cache = NewVerdictCache()
		if _, _, err := m.reconcileRelease(sr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReconcileVerdictHit(b *testing.B) {
	m, sr := heavyMarket(b, 16)
	if _, _, err := m.reconcileRelease(sr); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, hit, err := m.reconcileRelease(sr); err != nil || !hit {
			b.Fatalf("hit=%v err=%v", hit, err)
		}
	}
}
