package market

import (
	"crypto/sha256"
	"sync"

	"sdnshield/internal/core"
	"sdnshield/internal/reconcile"
)

// verdictKey identifies one reconciliation input pair: the release's
// content address (which covers its manifest) and the site policy's
// source digest. Algorithm 1's CNF/DNF inclusion comparison is the
// expensive step of reconciliation; for a market that re-installs the
// same packages across many controllers and restarts, the verdict for a
// given pair never changes, so it is computed once and replayed.
type verdictKey struct {
	manifest Digest
	policy   Digest
}

// Verdict classifies the install pipeline's outcome for one release
// against one policy.
type Verdict string

// Install verdicts.
const (
	// VerdictApproved: the manifest satisfied the policy outright; the
	// release activates with its requested permissions.
	VerdictApproved Verdict = "approved"
	// VerdictRepaired: the policy was violated but the engine produced a
	// repaired (MEET-ed / truncated) permission set; activation waits for
	// administrator sign-off.
	VerdictRepaired Verdict = "repaired (pending sign-off)"
	// VerdictRejected: reconciliation left nothing to run with (an empty
	// effective set) or the policy referenced bindings the deployment
	// cannot resolve; the release cannot activate.
	VerdictRejected Verdict = "rejected"
)

// CachedVerdict is one memoized reconciliation outcome. The permission
// sets are private to the cache; accessors clone so callers can never
// mutate a cached entry.
type CachedVerdict struct {
	Verdict    Verdict
	Violations []reconcile.Violation
	effective  *core.Set
	requested  *core.Set
}

// Effective returns a private copy of the reconciled permission set.
func (cv *CachedVerdict) Effective() *core.Set { return cv.effective.Clone() }

// Requested returns a private copy of the pre-repair permission set.
func (cv *CachedVerdict) Requested() *core.Set { return cv.requested.Clone() }

// VerdictCache memoizes reconciliation outcomes keyed by
// (manifest digest, policy digest). Hits and misses are exported as
// sdnshield_market_verdict_cache_{hits,misses}_total.
type VerdictCache struct {
	mu      sync.RWMutex
	entries map[verdictKey]*CachedVerdict
}

// NewVerdictCache builds an empty cache.
func NewVerdictCache() *VerdictCache {
	return &VerdictCache{entries: make(map[verdictKey]*CachedVerdict)}
}

// PolicyDigest content-addresses a policy by its rendered source ("" —
// no policy — has a well-defined digest too, so cache keys stay total).
func PolicyDigest(policySrc string) Digest {
	return sha256.Sum256([]byte("sdnshield-policy-v1\x00" + policySrc))
}

// Get returns the memoized verdict for the pair, if any, counting the
// hit or miss.
func (c *VerdictCache) Get(manifest, policy Digest) (*CachedVerdict, bool) {
	c.mu.RLock()
	cv, ok := c.entries[verdictKey{manifest, policy}]
	c.mu.RUnlock()
	if ok {
		mCacheHits.Inc()
	} else {
		mCacheMisses.Inc()
	}
	return cv, ok
}

// Put memoizes a verdict for the pair. The sets are cloned on the way
// in, so later mutation by the caller cannot poison the cache.
func (c *VerdictCache) Put(manifest, policy Digest, verdict Verdict, violations []reconcile.Violation, effective, requested *core.Set) *CachedVerdict {
	cv := &CachedVerdict{
		Verdict:    verdict,
		Violations: append([]reconcile.Violation(nil), violations...),
		effective:  effective.Clone(),
		requested:  requested.Clone(),
	}
	c.mu.Lock()
	c.entries[verdictKey{manifest, policy}] = cv
	c.mu.Unlock()
	return cv
}

// Len reports the number of memoized pairs.
func (c *VerdictCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}

// Stats reports the process-wide hit/miss counters (shared across
// caches; they instrument the market subsystem, not one instance).
func (c *VerdictCache) Stats() (hits, misses uint64) {
	return mCacheHits.Value(), mCacheMisses.Value()
}
