package market

import (
	"errors"
	"sync"
	"testing"
	"time"

	"sdnshield/internal/core"
	"sdnshield/internal/isolation"
	"sdnshield/internal/obs/audit"
	"sdnshield/internal/permlang"
)

// fakeRuntime records permission activations and serves scripted health.
type fakeRuntime struct {
	mu     sync.Mutex
	perms  map[string]*core.Set
	health map[string]isolation.Health
	sets   int
}

func newFakeRuntime() *fakeRuntime {
	return &fakeRuntime{
		perms:  make(map[string]*core.Set),
		health: make(map[string]isolation.Health),
	}
}

func (f *fakeRuntime) SetPermissions(app string, set *core.Set) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.perms[app] = set
	f.sets++
}

func (f *fakeRuntime) AppHealth(app string) (isolation.Health, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	h, ok := f.health[app]
	return h, ok
}

func (f *fakeRuntime) setHealth(app string, h isolation.Health) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.health[app] = h
}

func (f *fakeRuntime) permsOf(app string) *core.Set {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.perms[app]
}

func waitCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// marketEnv wires a registry, a fake runtime and a market over the given
// policy, with short probation for tests.
func marketEnv(t *testing.T, policy string) (*Market, *fakeRuntime, func(r Release) Digest) {
	t.Helper()
	reg, sign := newTestRegistry(t)
	rt := newFakeRuntime()
	m, err := New(reg, rt, Config{
		PolicySrc:     policy,
		Probation:     80 * time.Millisecond,
		ProbationPoll: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	submit := func(r Release) Digest {
		sr := sign(r)
		d, err := reg.Submit(sr)
		if err != nil {
			t.Fatalf("submit %s@%s: %v", r.Name, r.Version, err)
		}
		return d
	}
	return m, rt, submit
}

const testPolicy = `
LET Bound = { PERM read_statistics PERM visible_topology PERM insert_flow LIMITING IP_DST 10.1.0.0 MASK 255.255.0.0 }
ASSERT EITHER { PERM network_access } OR { PERM process_runtime }
ASSERT mon <= Bound
`

func TestInstallApprovedActivates(t *testing.T) {
	m, rt, submit := marketEnv(t, testPolicy)
	d := submit(Release{Name: "mon", Vendor: "acme", Version: "1.0.0",
		Manifest: "PERM read_statistics\nPERM insert_flow LIMITING IP_DST 10.1.0.0 MASK 255.255.0.0"})

	res, err := m.Install(d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != VerdictApproved || res.Status != StatusActive {
		t.Fatalf("verdict=%q status=%q", res.Verdict, res.Status)
	}
	got := rt.permsOf("mon")
	if got == nil || !got.Has(core.TokenReadStatistics) || !got.Has(core.TokenInsertFlow) {
		t.Fatalf("runtime permissions = %v", got)
	}
	// Installing again over a live release must be refused.
	if _, err := m.Install(d); !errors.Is(err, ErrAlreadyInstalled) {
		t.Fatalf("second install err = %v, want ErrAlreadyInstalled", err)
	}
}

func TestInstallRepairedWaitsForSignOff(t *testing.T) {
	m, rt, submit := marketEnv(t, testPolicy)
	// insert_flow over an out-of-bound range: repaired by MEET with Bound.
	d := submit(Release{Name: "mon", Vendor: "acme", Version: "1.0.0",
		Manifest: "PERM read_statistics\nPERM insert_flow LIMITING IP_DST 10.1.0.0 MASK 255.0.0.0"})

	res, err := m.Install(d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != VerdictRepaired || res.Status != StatusPending {
		t.Fatalf("verdict=%q status=%q", res.Verdict, res.Status)
	}
	if rt.permsOf("mon") != nil {
		t.Fatal("pending release reached the runtime before sign-off")
	}

	ares, err := m.Approve("mon")
	if err != nil {
		t.Fatal(err)
	}
	if ares.Status != StatusActive {
		t.Fatalf("status after approve = %q", ares.Status)
	}
	got := rt.permsOf("mon")
	if got == nil || !got.Has(core.TokenInsertFlow) {
		t.Fatalf("approved permissions = %v", got)
	}
	// The activated set is the repaired one: it must sit inside the
	// policy boundary (Algorithm 1 as the oracle) — the wider 10/8
	// request must not survive the MEET.
	bm, err := permlang.Parse("PERM read_statistics PERM visible_topology PERM insert_flow LIMITING IP_DST 10.1.0.0 MASK 255.255.0.0")
	if err != nil {
		t.Fatal(err)
	}
	bound := core.NewSet()
	for _, p := range bm.Permissions {
		bound.Grant(p.Token, p.Filter)
	}
	inc, err := bound.Includes(got)
	if err != nil {
		t.Fatal(err)
	}
	if !inc {
		t.Fatal("repaired permission set exceeds the policy boundary")
	}
	// Approving twice must fail.
	if _, err := m.Approve("mon"); !errors.Is(err, ErrNothingPending) {
		t.Fatalf("second approve err = %v, want ErrNothingPending", err)
	}
}

func TestInstallRejectedEmptyEffective(t *testing.T) {
	m, rt, submit := marketEnv(t, testPolicy)
	// Outside the boundary entirely: MEET leaves nothing.
	d := submit(Release{Name: "mon", Vendor: "acme", Version: "1.0.0",
		Manifest: "PERM process_runtime"})

	res, err := m.Install(d)
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v, want ErrRejected", err)
	}
	if res == nil || res.Verdict != VerdictRejected {
		t.Fatalf("result = %+v", res)
	}
	if rt.permsOf("mon") != nil {
		t.Fatal("rejected release reached the runtime")
	}
	if _, ok := m.Status("mon"); ok {
		if s, _ := m.Status("mon"); s.Status == StatusActive {
			t.Fatal("rejected release shows as active")
		}
	}
}

func TestInstallRejectedUnknownReference(t *testing.T) {
	m, _, submit := marketEnv(t, "ASSERT mon <= NoSuchBinding\n")
	d := submit(Release{Name: "mon", Vendor: "acme", Version: "1.0.0",
		Manifest: "PERM read_statistics"})
	if _, err := m.Install(d); !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v, want ErrRejected", err)
	}
}

func TestUpgradeRequiresNewerVersion(t *testing.T) {
	m, _, submit := marketEnv(t, "")
	d1 := submit(Release{Name: "mon", Vendor: "acme", Version: "1.1.0", Manifest: "PERM read_statistics"})
	if _, err := m.Install(d1); err != nil {
		t.Fatal(err)
	}
	dOld := submit(Release{Name: "mon", Vendor: "acme", Version: "1.0.0", Manifest: "PERM read_statistics LIMITING PORT_LEVEL"})
	if _, err := m.Upgrade(dOld); !errors.Is(err, ErrNotAnUpgrade) {
		t.Fatalf("downgrade err = %v, want ErrNotAnUpgrade", err)
	}
	// Upgrading an app that is not installed fails too.
	dOther := submit(Release{Name: "other", Vendor: "acme", Version: "2.0.0", Manifest: "PERM read_statistics"})
	if _, err := m.Upgrade(dOther); !errors.Is(err, ErrNotInstalled) {
		t.Fatalf("err = %v, want ErrNotInstalled", err)
	}
}

func TestUpgradeProbationCommits(t *testing.T) {
	m, rt, submit := marketEnv(t, "")
	d1 := submit(Release{Name: "mon", Vendor: "acme", Version: "1.0.0", Manifest: "PERM read_statistics"})
	if _, err := m.Install(d1); err != nil {
		t.Fatal(err)
	}
	rt.setHealth("mon", isolation.Running)

	before := audit.Default().LastSeq()
	d2 := submit(Release{Name: "mon", Vendor: "acme", Version: "1.1.0",
		Manifest: "PERM read_statistics\nPERM visible_topology"})
	res, err := m.Upgrade(d2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusProbation {
		t.Fatalf("status = %q, want probation", res.Status)
	}
	if got := rt.permsOf("mon"); got == nil || !got.Has(core.TokenVisibleTopology) {
		t.Fatal("upgrade permissions not activated during probation")
	}

	waitCond(t, "probation commit", func() bool {
		s, _ := m.Status("mon")
		return s.Status == StatusActive
	})
	// The commit is audited under the upgrade's correlation ID.
	audit.Default().DrainNow()
	evs := audit.Default().Query(audit.Filter{App: "mon", Kind: audit.KindMarket, Corr: res.Corr, AfterSeq: before})
	var sawUpgrade, sawCommit bool
	for _, e := range evs {
		switch e.Op {
		case "upgrade":
			sawUpgrade = true
		case "commit":
			sawCommit = true
		}
	}
	if !sawUpgrade || !sawCommit {
		t.Fatalf("correlated events upgrade=%v commit=%v: %+v", sawUpgrade, sawCommit, evs)
	}
	if got := rt.permsOf("mon"); !got.Has(core.TokenVisibleTopology) {
		t.Fatal("committed upgrade lost its permissions")
	}
}

func TestUpgradeProbationRollsBackOnPanic(t *testing.T) {
	m, rt, submit := marketEnv(t, "")
	d1 := submit(Release{Name: "mon", Vendor: "acme", Version: "1.0.0", Manifest: "PERM read_statistics"})
	if _, err := m.Install(d1); err != nil {
		t.Fatal(err)
	}
	rt.setHealth("mon", isolation.Running)

	before := audit.Default().LastSeq()
	d2 := submit(Release{Name: "mon", Vendor: "acme", Version: "2.0.0",
		Manifest: "PERM read_statistics\nPERM process_runtime"})
	res, err := m.Upgrade(d2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusProbation {
		t.Fatalf("status = %q", res.Status)
	}
	// The new release misbehaves inside the window.
	rt.setHealth("mon", isolation.Restarting)

	waitCond(t, "rollback", func() bool {
		s, _ := m.Status("mon")
		return s.Status == StatusActive && s.Version == "1.0.0"
	})
	got := rt.permsOf("mon")
	if got.Has(core.TokenProcessRuntime) {
		t.Fatal("rolled-back app kept the upgrade's permissions")
	}
	if !got.Has(core.TokenReadStatistics) {
		t.Fatal("rollback lost the previous release's permissions")
	}
	// Upgrade and rollback share one correlation ID.
	audit.Default().DrainNow()
	evs := audit.Default().Query(audit.Filter{App: "mon", Kind: audit.KindMarket,
		Verdict: audit.VerdictRollback, Corr: res.Corr, AfterSeq: before})
	if len(evs) == 0 {
		t.Fatal("no rollback audit event correlated with the upgrade")
	}
}

func TestRevokeClearsPermissions(t *testing.T) {
	m, rt, submit := marketEnv(t, "")
	d := submit(Release{Name: "mon", Vendor: "acme", Version: "1.0.0", Manifest: "PERM read_statistics"})
	if _, err := m.Install(d); err != nil {
		t.Fatal(err)
	}
	if err := m.Revoke("mon"); err != nil {
		t.Fatal(err)
	}
	if got := rt.permsOf("mon"); got == nil || got.Len() != 0 {
		t.Fatalf("post-revoke permissions = %v, want empty set", got)
	}
	s, _ := m.Status("mon")
	if s.Status != StatusRevoked {
		t.Fatalf("status = %q", s.Status)
	}
	// A fresh install over a revoked app is allowed.
	if _, err := m.Install(d); err != nil {
		t.Fatalf("reinstall after revoke: %v", err)
	}
	if err := m.Revoke("ghost"); !errors.Is(err, ErrNotInstalled) {
		t.Fatalf("revoke ghost err = %v", err)
	}
}

func TestSnapshotListsRegistryAndInstalled(t *testing.T) {
	m, _, submit := marketEnv(t, "")
	submit(Release{Name: "b-app", Vendor: "acme", Version: "1.0.0", Manifest: "PERM read_statistics"})
	dA := submit(Release{Name: "a-app", Vendor: "acme", Version: "1.0.0", Manifest: "PERM read_statistics"})
	if _, err := m.Install(dA); err != nil {
		t.Fatal(err)
	}
	snaps := m.Snapshot()
	if len(snaps) != 2 {
		t.Fatalf("snapshot count = %d", len(snaps))
	}
	if snaps[0].App != "a-app" || snaps[1].App != "b-app" {
		t.Fatalf("snapshot order = %s, %s", snaps[0].App, snaps[1].App)
	}
	if snaps[0].Status != StatusActive || snaps[0].Version != "1.0.0" {
		t.Fatalf("a-app snapshot = %+v", snaps[0])
	}
	if snaps[1].Status != "" && snaps[1].Status != AppStatus("") {
		t.Fatalf("b-app should be uninstalled, got %q", snaps[1].Status)
	}
}

// budgetFakeRuntime extends fakeRuntime with quota support, exercising
// the optional BudgetRuntime interface the way *isolation.Shield does.
type budgetFakeRuntime struct {
	fakeRuntime
	budgets map[string]core.Budget
}

var _ BudgetRuntime = (*budgetFakeRuntime)(nil)
var _ BudgetRuntime = (*isolation.Shield)(nil)

func newBudgetFakeRuntime() *budgetFakeRuntime {
	return &budgetFakeRuntime{
		fakeRuntime: *newFakeRuntime(),
		budgets:     make(map[string]core.Budget),
	}
}

func (f *budgetFakeRuntime) SetBudget(app string, b core.Budget) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.budgets[app] = b
}

func (f *budgetFakeRuntime) budgetOf(app string) core.Budget {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.budgets[app]
}

func TestBudgetThreadsThroughLifecycle(t *testing.T) {
	reg, sign := newTestRegistry(t)
	rt := newBudgetFakeRuntime()
	m, err := New(reg, rt, Config{
		Probation:     80 * time.Millisecond,
		ProbationPoll: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	submit := func(r Release) Digest {
		d, err := reg.Submit(sign(r))
		if err != nil {
			t.Fatalf("submit %s@%s: %v", r.Name, r.Version, err)
		}
		return d
	}

	// Install pushes the manifest's BUDGET statements as the quota.
	d1 := submit(Release{Name: "mon", Vendor: "acme", Version: "1.0.0",
		Manifest: "PERM read_statistics\nBUDGET CPU_MS_PER_SEC 250\nBUDGET MAX_GOROUTINES 4"})
	if _, err := m.Install(d1); err != nil {
		t.Fatal(err)
	}
	want1 := core.Budget{CPUMillisPerSec: 250, MaxGoroutines: 4}
	if got := rt.budgetOf("mon"); got != want1 {
		t.Fatalf("installed budget = %+v, want %+v", got, want1)
	}

	// A probated upgrade activates the new release's budget; rollback
	// restores the previous one.
	rt.setHealth("mon", isolation.Running)
	d2 := submit(Release{Name: "mon", Vendor: "acme", Version: "2.0.0",
		Manifest: "PERM read_statistics\nBUDGET CPU_MS_PER_SEC 900"})
	if _, err := m.Upgrade(d2); err != nil {
		t.Fatal(err)
	}
	want2 := core.Budget{CPUMillisPerSec: 900}
	if got := rt.budgetOf("mon"); got != want2 {
		t.Fatalf("upgraded budget = %+v, want %+v", got, want2)
	}
	rt.setHealth("mon", isolation.Restarting)
	waitCond(t, "rollback", func() bool {
		s, _ := m.Status("mon")
		return s.Status == StatusActive && s.Version == "1.0.0"
	})
	if got := rt.budgetOf("mon"); got != want1 {
		t.Fatalf("rolled-back budget = %+v, want %+v", got, want1)
	}

	// Revoke clears the quota along with the permissions.
	if err := m.Revoke("mon"); err != nil {
		t.Fatal(err)
	}
	if got := rt.budgetOf("mon"); !got.IsZero() {
		t.Fatalf("post-revoke budget = %+v, want zero", got)
	}
}

func TestBudgetlessRuntimeIgnoresBudgets(t *testing.T) {
	// A Runtime without SetBudget must keep working: the budget is
	// simply not threaded.
	m, rt, submit := marketEnv(t, "")
	d := submit(Release{Name: "mon", Vendor: "acme", Version: "1.0.0",
		Manifest: "PERM read_statistics\nBUDGET CPU_MS_PER_SEC 250"})
	if _, err := m.Install(d); err != nil {
		t.Fatal(err)
	}
	if got := rt.permsOf("mon"); got == nil || !got.Has(core.TokenReadStatistics) {
		t.Fatalf("permissions = %v", got)
	}
}
