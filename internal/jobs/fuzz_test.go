package jobs

import (
	"bytes"
	"testing"
)

// FuzzJobDecode hammers the WAL record codec: arbitrary bytes must
// never panic the decoder, and anything that decodes must survive an
// encode/decode round trip unchanged (varints may be non-minimal in the
// input, so the invariant is semantic, not byte-identical).
func FuzzJobDecode(f *testing.F) {
	seeds := []*walRecord{
		{op: opEnqueue, id: 1, queue: "market.install", payload: []byte(`{"digest":"ab"}`), corr: 3, maxAttempts: 5, ts: 1700000000},
		{op: opAck, id: 2, result: []byte(`{"ok":true}`), ts: 42},
		{op: opFail, id: 3, attempts: 2, errMsg: "transient", ts: -9},
		{op: opDead, id: 4, attempts: 5, errMsg: "exhausted", ts: 0},
		{op: opMeta, id: 1 << 32},
		// Span-annotated records: the optional trace suffix (traceID,
		// spanID, parent after ts) must round-trip, partially-zero
		// contexts included, or restarted workers lose their trace.
		{op: opEnqueue, id: 5, queue: "market.install", payload: []byte(`{"digest":"cd"}`), corr: 7, maxAttempts: 5, ts: 1700000001, traceID: 7, spanID: 19, spanParent: 11},
		{op: opEnqueue, id: 6, queue: "market.upgrade", payload: []byte(`{"digest":"ef"}`), corr: 9, maxAttempts: 3, ts: 1700000002, traceID: 9, spanID: 1},
		{op: opEnqueue, id: 7, queue: "market.recompute", ts: 5, spanID: 1 << 40, spanParent: 1},
		// Tenant-tagged records: the tenant rides as a further optional
		// suffix after the trace triple — with and without a real trace
		// context, since a tenant alone forces an all-zero triple.
		{op: opEnqueue, id: 8, queue: "market.install", payload: []byte(`{"digest":"aa"}`), corr: 12, maxAttempts: 5, ts: 1700000003, traceID: 21, spanID: 22, spanParent: 19, tenant: "acme"},
		{op: opEnqueue, id: 9, queue: "market.install", ts: 6, tenant: "tenant-b.prod"},
	}
	for _, r := range seeds {
		f.Add(encodeRecord(r))
	}
	f.Add([]byte{})
	f.Add([]byte{1})
	f.Add([]byte{0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := decodeRecord(data)
		if err != nil {
			return
		}
		re := encodeRecord(r)
		r2, err := decodeRecord(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if r2.op != r.op || r2.id != r.id || r2.queue != r.queue || r2.ts != r.ts ||
			r2.corr != r.corr || r2.maxAttempts != r.maxAttempts || r2.attempts != r.attempts ||
			r2.errMsg != r.errMsg || !bytes.Equal(r2.payload, r.payload) || !bytes.Equal(r2.result, r.result) ||
			r2.traceID != r.traceID || r2.spanID != r.spanID || r2.spanParent != r.spanParent ||
			r2.tenant != r.tenant {
			t.Fatalf("round trip drifted: %+v != %+v", r2, r)
		}
	})
}
