package jobs

import (
	"testing"
	"time"

	"sdnshield/internal/obs"
	"sdnshield/internal/obs/span"
)

// TestTraceSurvivesWALReplay: a job enqueued with a span context keeps
// that context across a manager restart — the WAL record carries the
// trace, so a worker in the next process still executes under the
// submitting operation's trace.
func TestTraceSurvivesWALReplay(t *testing.T) {
	dir := t.TempDir()
	m1, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	orig := span.Context{TraceID: 991_177, SpanID: 42, Parent: 7}
	// No handler registered: the job stays pending in the WAL.
	id, err := m1.Enqueue("replay-trace", []byte(`{"n":1}`), WithCorr(orig.TraceID), WithTrace(orig))
	if err != nil {
		t.Fatal(err)
	}
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}

	m2 := openTest(t, dir)
	snap, ok := m2.Status(id)
	if !ok || snap.State != StatePending {
		t.Fatalf("replayed job = (%+v, %v), want pending", snap, ok)
	}
	if snap.Trace != orig {
		t.Fatalf("replayed trace = %+v, want %+v", snap.Trace, orig)
	}
	if snap.Corr != orig.TraceID {
		t.Fatalf("replayed corr = %d, want %d", snap.Corr, orig.TraceID)
	}

	// The worker hands the handler an exec child of the persisted
	// context: same trace, parented to the enqueue-side span.
	got := make(chan span.Context, 1)
	m2.Handle("replay-trace", 1, func(j Snapshot) ([]byte, error) {
		got <- j.Trace
		return nil, nil
	})
	waitFor(t, "replayed job done", func() bool {
		s, ok := m2.Status(id)
		return ok && s.State == StateDone
	})
	hc := <-got
	if hc.TraceID != orig.TraceID {
		t.Fatalf("handler trace ID = %d, want %d", hc.TraceID, orig.TraceID)
	}
	if hc.Parent != orig.SpanID {
		t.Fatalf("handler span parent = %d, want the persisted enqueue span %d", hc.Parent, orig.SpanID)
	}
}

// TestTraceAbsentStaysUntraced: jobs enqueued without WithTrace replay
// with a zero context — the WAL's legacy record shape decodes as "not
// traced", never as a phantom trace.
func TestTraceAbsentStaysUntraced(t *testing.T) {
	dir := t.TempDir()
	m1, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	id, err := m1.Enqueue("replay-untraced", []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}
	m2 := openTest(t, dir)
	snap, ok := m2.Status(id)
	if !ok || snap.Trace.Valid() {
		t.Fatalf("untraced job replayed as %+v (ok=%v), want zero context", snap.Trace, ok)
	}
}

// TestDrainAllZeroesQueueGauges is the gauge-drift regression test: a
// drained manager must give back its contribution to the process-global
// pending/inflight gauges, whether the backlog was waiting or running.
func TestDrainAllZeroesQueueGauges(t *testing.T) {
	reg := obs.Default()
	const qPend, qBusy = "gauge-drift-pending", "gauge-drift-busy"
	pending := func(q string) float64 { return reg.TotalOfLabeled("sdnshield_jobs_pending", "queue", q) }
	inflight := func(q string) float64 { return reg.TotalOfLabeled("sdnshield_jobs_inflight", "queue", q) }

	m := openTest(t, t.TempDir())
	// Five jobs with no handler: a pure pending backlog.
	for i := 0; i < 5; i++ {
		if _, err := m.Enqueue(qPend, []byte(`{}`)); err != nil {
			t.Fatal(err)
		}
	}
	// One job held inflight by a blocking handler.
	release := make(chan struct{})
	m.Handle(qBusy, 1, func(Snapshot) ([]byte, error) { <-release; return nil, nil })
	if _, err := m.Enqueue(qBusy, []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "busy job inflight", func() bool { return inflight(qBusy) == 1 })
	if got := pending(qPend); got != 5 {
		t.Fatalf("pending gauge before drain = %v, want 5", got)
	}

	// DrainAll blocks on the inflight job; let it finish mid-drain.
	go func() {
		time.Sleep(10 * time.Millisecond)
		close(release)
	}()
	DrainAll()

	if got := pending(qPend); got != 0 {
		t.Fatalf("pending gauge after drain = %v, want 0 (drained backlog leaked)", got)
	}
	if got := inflight(qBusy); got != 0 {
		t.Fatalf("inflight gauge after drain = %v, want 0", got)
	}
	if got := pending(qBusy); got != 0 {
		t.Fatalf("busy queue pending gauge after drain = %v, want 0", got)
	}
}

// TestKillZeroesQueueGauges: the crash path gives the gauges back too —
// a killed manager's backlog is the next Open's problem, not a phantom
// queue depth on the dashboard.
func TestKillZeroesQueueGauges(t *testing.T) {
	reg := obs.Default()
	const q = "gauge-drift-kill"
	m := openTest(t, t.TempDir())
	for i := 0; i < 3; i++ {
		if _, err := m.Enqueue(q, []byte(`{}`)); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.TotalOfLabeled("sdnshield_jobs_pending", "queue", q); got != 3 {
		t.Fatalf("pending gauge before kill = %v, want 3", got)
	}
	m.Kill()
	if got := reg.TotalOfLabeled("sdnshield_jobs_pending", "queue", q); got != 0 {
		t.Fatalf("pending gauge after kill = %v, want 0", got)
	}
}
