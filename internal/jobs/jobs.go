// Package jobs is SDNShield's durable, dependency-free job spine: a
// WAL-backed queue manager with per-queue worker pools, at-least-once
// delivery, exponential retry with a dead-letter terminal state, and
// bounded admission for backpressure. The market's install pipeline
// rides on it so the HTTP handler never reconciles inline — it enqueues
// and returns 202, and workers drive verify → parse → reconcile off the
// request path.
//
// Durability model: every enqueue is appended to the WAL and flushed to
// the OS before Enqueue returns; fsync is group-committed on a short
// interval (Config.SyncInterval) and forced on Close. A job is removed
// from the log only by its ack record, so a worker crash between pop
// and ack replays the job as pending on the next Open — at-least-once,
// never lost. Handlers must therefore be idempotent or tolerate reruns.
package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"

	"sdnshield/internal/obs/audit"
	"sdnshield/internal/obs/span"
)

// State is a job's lifecycle state.
type State string

// Job states. pending → running → done is the happy path; running →
// pending (retry) after a failed attempt; running → dead after the
// attempt budget is spent or a Permanent error.
const (
	StatePending State = "pending"
	StateRunning State = "running"
	StateDone    State = "done"
	StateDead    State = "dead"
)

// Lifecycle errors.
var (
	// ErrClosed reports an operation on a closed manager.
	ErrClosed = errors.New("jobs: manager closed")
	// ErrQueueFull reports admission refusal: the queue's pending backlog
	// is at its bound. Callers should surface backpressure (HTTP 429).
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrUnknownJob reports a Status/Requeue of an ID the manager does
	// not retain.
	ErrUnknownJob = errors.New("jobs: unknown job")
)

// Handler executes one job attempt. The returned bytes are retained as
// the job's result (pollable via Status); a nil error acks the job. An
// error wrapped with Permanent dead-letters immediately; any other
// error consumes one attempt and retries with backoff.
type Handler func(j Snapshot) ([]byte, error)

// permanentError marks an error that must not be retried.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps an error so the job dead-letters on the spot instead
// of burning retries — for business-terminal failures (malformed
// payload, unknown digest) where a rerun cannot succeed.
func Permanent(err error) error { return &permanentError{err: err} }

func isPermanent(err error) bool {
	var pe *permanentError
	return errors.As(err, &pe)
}

// Config tunes a Manager.
type Config struct {
	// Dir is the WAL directory. "" runs the manager in memory only (no
	// durability) — tests and throwaway tooling.
	Dir string
	// MaxDepth bounds each queue's pending backlog; Enqueue beyond it
	// returns ErrQueueFull. Default 4096.
	MaxDepth int
	// MaxAttempts is the default attempt budget per job. Default 5.
	MaxAttempts int
	// Backoff is the first retry delay; each further attempt doubles it
	// up to MaxBackoff. Defaults 25ms / 2s.
	Backoff    time.Duration
	MaxBackoff time.Duration
	// SyncInterval is the group-commit fsync cadence. Default 5ms.
	SyncInterval time.Duration
	// RetainDone bounds how many completed/dead jobs stay pollable;
	// older ones are evicted. Default 4096.
	RetainDone int
}

func (c *Config) fill() {
	if c.MaxDepth <= 0 {
		c.MaxDepth = 4096
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 5
	}
	if c.Backoff <= 0 {
		c.Backoff = 25 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 2 * time.Second
	}
	if c.SyncInterval <= 0 {
		c.SyncInterval = 5 * time.Millisecond
	}
	if c.RetainDone <= 0 {
		c.RetainDone = 4096
	}
}

// job is the manager's internal record of one job.
type job struct {
	id          uint64
	queue       string
	payload     []byte
	corr        uint64
	trace       span.Context // span context of the enqueuing operation
	tenant      string       // owning tenant ("" single-tenant)
	maxAttempts int
	attempts    int
	state       State
	lastErr     string
	result      []byte
	enqueuedAt  time.Time
	startedAt   time.Time
	finishedAt  time.Time
}

// Snapshot is a job's externally visible state — the /market/jobs/<id>
// body.
type Snapshot struct {
	ID          uint64 `json:"id"`
	Queue       string `json:"queue"`
	State       State  `json:"state"`
	Attempts    int    `json:"attempts"`
	MaxAttempts int    `json:"max_attempts"`
	Corr        uint64 `json:"corr,omitempty"`
	// Trace is the span context the job carries: the handler's side of
	// trace propagation. Workers run the handler under a child span of
	// it, so the operation's trace continues across the queue hop — and,
	// because the context is WAL-persisted, across a restart.
	Trace      span.Context `json:"trace"`
	Tenant     string       `json:"tenant,omitempty"`
	Error      string       `json:"error,omitempty"`
	Payload    []byte       `json:"-"`
	Result     []byte       `json:"-"`
	EnqueuedAt time.Time    `json:"enqueued_at"`
	StartedAt  time.Time    `json:"started_at,omitempty"`
	FinishedAt time.Time    `json:"finished_at,omitempty"`
}

// MarshalJSON renders Payload/Result inline when they are valid JSON
// (the market's case) and as quoted strings otherwise.
func (s Snapshot) MarshalJSON() ([]byte, error) {
	type alias Snapshot
	aux := struct {
		alias
		Payload json.RawMessage `json:"payload,omitempty"`
		Result  json.RawMessage `json:"result,omitempty"`
	}{alias: alias(s)}
	aux.Payload = rawOrQuote(s.Payload)
	aux.Result = rawOrQuote(s.Result)
	return json.Marshal(aux)
}

func rawOrQuote(b []byte) json.RawMessage {
	if len(b) == 0 {
		return nil
	}
	if json.Valid(b) {
		return json.RawMessage(b)
	}
	return json.RawMessage(strconv.Quote(string(b)))
}

// queue is one named queue's pending list and worker pool.
type queue struct {
	name    string
	pending []*job // FIFO; head is pending[0]
	handler Handler
	workers int
	cond    *sync.Cond
	met     *queueMetrics

	inflight int
	enqueued uint64
	done     uint64
	retried  uint64
	dead     uint64
	rejected uint64
}

// Manager owns the WAL, the queues and their workers.
type Manager struct {
	cfg Config

	mu      sync.Mutex
	wal     *wal // nil when ephemeral
	queues  map[string]*queue
	jobs    map[uint64]*job
	doneSeq []uint64 // completed/dead IDs in finish order, for eviction
	// deadByTenant counts dead-lettered jobs per owning tenant (the ""
	// key aggregates untenanted jobs), surviving restarts via replay.
	deadByTenant map[string]uint64
	nextID       uint64
	timers       map[uint64]*time.Timer // scheduled retries by job ID
	closing      bool
	killed       bool

	wg        sync.WaitGroup
	stopFlush chan struct{}
}

// openManagers tracks every live manager so CLIs can drain them all on
// SIGINT/SIGTERM from one bench.OnShutdown hook.
var (
	openMu       sync.Mutex
	openManagers = make(map[*Manager]struct{})
)

// DrainAll gracefully closes every open manager: intake stops, in-flight
// jobs finish, WALs are fsynced. Wired into the CLIs' shutdown path.
func DrainAll() {
	openMu.Lock()
	ms := make([]*Manager, 0, len(openManagers))
	for m := range openManagers {
		ms = append(ms, m)
	}
	openMu.Unlock()
	for _, m := range ms {
		_ = m.Close()
	}
}

// Open builds a manager, replaying (and compacting) the WAL when cfg.Dir
// is set. Jobs that were pending or running at the last crash/shutdown
// come back pending; workers pick them up as soon as Handle registers
// their queue.
func Open(cfg Config) (*Manager, error) {
	cfg.fill()
	m := &Manager{
		cfg:          cfg,
		queues:       make(map[string]*queue),
		jobs:         make(map[uint64]*job),
		timers:       make(map[uint64]*time.Timer),
		deadByTenant: make(map[string]uint64),
		stopFlush:    make(chan struct{}),
		nextID:       1, // 0 is "no job" in every external surface
	}
	if cfg.Dir != "" {
		if err := m.replay(); err != nil {
			return nil, err
		}
		w, err := openWAL(cfg.Dir)
		if err != nil {
			return nil, err
		}
		m.wal = w
		m.wg.Add(1)
		go m.flusher()
	}
	openMu.Lock()
	openManagers[m] = struct{}{}
	openMu.Unlock()
	return m, nil
}

// replay loads the WAL into memory, re-queues live jobs, and rewrites
// the log compacted (live enqueue records only) when it holds settled
// history. Completed/dead jobs from the old log stay pollable in this
// process but are not carried into the compacted file.
func (m *Manager) replay() error {
	recs, goodOffset, err := replayWAL(m.cfg.Dir)
	if err != nil {
		return err
	}
	if len(recs) == 0 {
		// Fresh or unreadable log: start clean. Truncate so a torn header
		// does not poison later appends.
		return os.RemoveAll(walPath(m.cfg.Dir))
	}
	var order []uint64
	metaRecs := 0
	for _, r := range recs {
		switch r.op {
		case opMeta:
			metaRecs++
			if r.id >= m.nextID {
				m.nextID = r.id + 1
			}
		case opEnqueue:
			j, ok := m.jobs[r.id]
			if !ok {
				j = &job{id: r.id}
				m.jobs[r.id] = j
				order = append(order, r.id)
			}
			j.queue = r.queue
			j.payload = r.payload
			j.corr = r.corr
			j.trace = span.Context{TraceID: r.traceID, SpanID: r.spanID, Parent: r.spanParent}
			j.tenant = r.tenant
			j.maxAttempts = int(r.maxAttempts)
			j.attempts = int(r.attempts)
			j.state = StatePending
			j.lastErr = ""
			j.result = nil
			j.enqueuedAt = time.Unix(0, r.ts)
			if r.id >= m.nextID {
				m.nextID = r.id + 1
			}
		case opFail:
			if j, ok := m.jobs[r.id]; ok {
				j.attempts = int(r.attempts)
				j.lastErr = r.errMsg
				j.state = StatePending
			}
		case opAck:
			if j, ok := m.jobs[r.id]; ok {
				j.state = StateDone
				j.result = r.result
				j.finishedAt = time.Unix(0, r.ts)
			}
		case opDead:
			if j, ok := m.jobs[r.id]; ok {
				j.state = StateDead
				j.attempts = int(r.attempts)
				j.lastErr = r.errMsg
				j.finishedAt = time.Unix(0, r.ts)
				m.deadByTenant[j.tenant]++
			}
		}
	}
	live := 0
	for _, id := range order {
		j := m.jobs[id]
		switch j.state {
		case StatePending:
			q := m.queueOf(j.queue)
			q.pending = append(q.pending, j)
			q.met.pending.Add(1)
			live++
		case StateDone, StateDead:
			m.doneSeq = append(m.doneSeq, id)
		}
	}
	// Compact: the settled records are replayed into memory; rewrite the
	// file with only the live backlog so the log cannot grow without
	// bound across restarts.
	if live < len(m.jobs) || len(recs)-metaRecs > len(m.jobs) {
		return m.rewriteCompact()
	}
	// No rewrite: the file is about to be reopened O_APPEND, so a torn
	// tail must go now — otherwise fresh records would land after the
	// corrupt bytes and the next replay, stopping at the tear, would
	// silently drop everything appended beyond it.
	if st, err := os.Stat(walPath(m.cfg.Dir)); err == nil && st.Size() > goodOffset {
		if err := os.Truncate(walPath(m.cfg.Dir), goodOffset); err != nil {
			return err
		}
	}
	return nil
}

// rewriteCompact writes a fresh WAL holding the ID high-water mark and
// one enqueue record per live job, and atomically replaces the old log.
func (m *Manager) rewriteCompact() error {
	tmpDir := m.cfg.Dir
	tmp, err := os.CreateTemp(tmpDir, "queue.wal.compact-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	w := &wal{f: tmp, w: nil}
	w.w = newBufWriter(tmp)
	if _, err := w.w.WriteString(walMagic); err != nil {
		_ = tmp.Close()
		return err
	}
	if m.nextID > 1 {
		// Settled jobs' enqueue records are dropped below; without the
		// high-water mark a restart would re-issue their IDs and clients
		// polling an old /market/jobs/<id> URL would see a stranger's job.
		if err := w.append(&walRecord{op: opMeta, id: m.nextID - 1}); err != nil {
			_ = tmp.Close()
			return err
		}
	}
	for _, q := range m.queues {
		for _, j := range q.pending {
			if err := w.append(enqueueRecord(j)); err != nil {
				_ = tmp.Close()
				return err
			}
		}
	}
	if err := w.close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), walPath(m.cfg.Dir))
}

func enqueueRecord(j *job) *walRecord {
	return &walRecord{
		op: opEnqueue, id: j.id, queue: j.queue, payload: j.payload,
		corr: j.corr, maxAttempts: uint32(j.maxAttempts), attempts: uint32(j.attempts),
		ts:      j.enqueuedAt.UnixNano(),
		traceID: j.trace.TraceID, spanID: j.trace.SpanID, spanParent: j.trace.Parent,
		tenant: j.tenant,
	}
}

// flusher group-commits the WAL: buffered appends are flushed at append
// time; this loop bounds the fsync staleness to SyncInterval.
func (m *Manager) flusher() {
	defer m.wg.Done()
	t := time.NewTicker(m.cfg.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-m.stopFlush:
			return
		case <-t.C:
			m.mu.Lock()
			w := m.wal
			if w == nil || m.killed {
				m.mu.Unlock()
				return
			}
			_ = w.w.Flush()
			f := w.f
			m.mu.Unlock()
			_ = f.Sync()
		}
	}
}

// queueOf returns (creating) the named queue. Caller holds m.mu or is
// inside replay (single-threaded).
func (m *Manager) queueOf(name string) *queue {
	q, ok := m.queues[name]
	if !ok {
		q = &queue{name: name, met: metricsFor(name)}
		q.cond = sync.NewCond(&m.mu)
		m.queues[name] = q
	}
	return q
}

// Option tunes one enqueued job.
type Option func(*job)

// WithCorr stamps the job with an audit correlation ID so every event
// the job's execution emits ties back to the submitting request.
func WithCorr(corr uint64) Option { return func(j *job) { j.corr = corr } }

// WithTrace stamps the job with the enqueuing operation's span context,
// persisted in the WAL so the trace survives a restart: the worker (in
// this process or the next one) runs the handler under a child span of
// it.
func WithTrace(ctx span.Context) Option { return func(j *job) { j.trace = ctx } }

// WithTenant stamps the job with its owning tenant, persisted in the WAL
// so per-tenant accounting (dead-letter counts above all) survives a
// restart and audit events the job emits carry the attribution.
func WithTenant(tenant string) Option { return func(j *job) { j.tenant = tenant } }

// WithMaxAttempts overrides the manager's default attempt budget.
func WithMaxAttempts(n int) Option {
	return func(j *job) {
		if n > 0 {
			j.maxAttempts = n
		}
	}
}

// Enqueue appends a job to the named queue, durably (WAL append +
// flush) before returning its ID. A full queue refuses with
// ErrQueueFull — the backpressure signal.
func (m *Manager) Enqueue(queueName string, payload []byte, opts ...Option) (uint64, error) {
	m.mu.Lock()
	if m.closing || m.killed {
		m.mu.Unlock()
		return 0, ErrClosed
	}
	q := m.queueOf(queueName)
	if len(q.pending) >= m.cfg.MaxDepth {
		q.rejected++
		q.met.rejected.Inc()
		m.mu.Unlock()
		return 0, fmt.Errorf("%w: %s at depth %d", ErrQueueFull, queueName, m.cfg.MaxDepth)
	}
	id := m.nextID
	m.nextID++
	j := &job{
		id: id, queue: queueName, payload: append([]byte(nil), payload...),
		maxAttempts: m.cfg.MaxAttempts, state: StatePending, enqueuedAt: time.Now(),
	}
	for _, o := range opts {
		o(j)
	}
	if m.wal != nil {
		if err := m.wal.append(enqueueRecord(j)); err != nil {
			m.mu.Unlock()
			return 0, err
		}
		if err := m.wal.w.Flush(); err != nil {
			m.mu.Unlock()
			return 0, err
		}
	}
	m.jobs[id] = j
	q.pending = append(q.pending, j)
	q.enqueued++
	q.met.enqueued.Inc()
	q.met.pending.Add(1)
	q.cond.Signal()
	m.mu.Unlock()

	span.Add(j.trace, "job:enqueue:"+queueName, j.enqueuedAt, time.Since(j.enqueuedAt))
	if audit.On() {
		audit.Emit(audit.Event{
			Kind: audit.KindJob, Verdict: audit.VerdictEnqueue, Op: queueName, Corr: j.corr, Tenant: j.tenant,
			Detail: fmt.Sprintf("job %d enqueued", id),
		})
	}
	return id, nil
}

// Handle registers the queue's handler and starts its worker pool. Jobs
// already pending (including WAL-replayed backlog) are picked up
// immediately. Calling Handle twice for a queue replaces the handler
// but does not add workers.
func (m *Manager) Handle(queueName string, workers int, fn Handler) {
	if workers <= 0 {
		workers = 1
	}
	m.mu.Lock()
	q := m.queueOf(queueName)
	q.handler = fn
	start := q.workers == 0
	if start {
		q.workers = workers
	}
	m.mu.Unlock()
	if !start {
		return
	}
	for i := 0; i < workers; i++ {
		m.wg.Add(1)
		go m.worker(q)
	}
}

// worker is one pool goroutine: pop, run, settle, repeat.
func (m *Manager) worker(q *queue) {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		for len(q.pending) == 0 && !m.closing && !m.killed {
			q.cond.Wait()
		}
		if m.closing || m.killed {
			m.mu.Unlock()
			return
		}
		j := q.pending[0]
		q.pending = q.pending[1:]
		j.state = StateRunning
		j.attempts++
		j.startedAt = time.Now()
		q.inflight++
		q.met.pending.Add(-1)
		q.met.inflight.Add(1)
		snap := snapshotOf(j)
		fn := q.handler
		m.mu.Unlock()

		wait := snap.StartedAt.Sub(snap.EnqueuedAt)
		q.met.wait.Observe(wait)
		// Continue the enqueuing operation's trace: the queue wait as an
		// externally timed span (no extra clock reads), then the handler
		// under an exec child — whose context the snapshot carries so the
		// handler's own spans nest under the execution, not the enqueue.
		span.Add(snap.Trace, "job:queue_wait", snap.EnqueuedAt, wait)
		execSp := span.Start(snap.Trace, "job:exec:"+q.name)
		if c := execSp.Context(); c.Valid() {
			snap.Trace = c
		}
		res, err := runHandler(fn, snap)
		execSp.End()
		q.met.exec.Observe(time.Since(snap.StartedAt))
		m.settle(q, j, res, err)
	}
}

// runHandler executes one attempt, converting a panic into an error so
// a buggy handler burns an attempt instead of the process.
func runHandler(fn Handler, s Snapshot) (res []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("jobs: handler panic: %v", r)
		}
	}()
	return fn(s)
}

// settle records an attempt's outcome: ack, schedule a retry, or
// dead-letter. A killed manager (crash simulation) records no state or
// WAL transition — exactly what a real crash would do, leaving the WAL
// to replay the job — but the inflight gauge still settles, since the
// worker goroutine really has stopped working on the job.
func (m *Manager) settle(q *queue, j *job, res []byte, err error) {
	m.mu.Lock()
	q.inflight--
	q.met.inflight.Add(-1)
	if m.killed {
		m.mu.Unlock()
		return
	}
	now := time.Now()
	switch {
	case err == nil:
		j.state = StateDone
		j.result = res
		j.lastErr = ""
		j.finishedAt = now
		m.walAppend(&walRecord{op: opAck, id: j.id, attempts: uint32(j.attempts), result: res, ts: now.UnixNano()})
		q.done++
		q.met.completed.Inc()
		m.retainLocked(j)
	case isPermanent(err) || j.attempts >= j.maxAttempts:
		j.state = StateDead
		j.lastErr = err.Error()
		j.finishedAt = now
		m.walAppend(&walRecord{op: opDead, id: j.id, attempts: uint32(j.attempts), errMsg: j.lastErr, ts: now.UnixNano()})
		q.dead++
		q.met.deadC.Inc()
		m.deadByTenant[j.tenant]++
		m.retainLocked(j)
	default:
		j.state = StatePending
		j.lastErr = err.Error()
		m.walAppend(&walRecord{op: opFail, id: j.id, attempts: uint32(j.attempts), errMsg: j.lastErr, ts: now.UnixNano()})
		q.retried++
		q.met.retries.Inc()
		delay := m.backoff(j.attempts)
		id := j.id
		m.timers[id] = time.AfterFunc(delay, func() { m.requeueAfterBackoff(id) })
	}
	state, corr, attempts, lastErr, tenant := j.state, j.corr, j.attempts, j.lastErr, j.tenant
	m.mu.Unlock()

	if audit.On() {
		v := audit.VerdictDone
		switch state {
		case StateDead:
			v = audit.VerdictDead
		case StatePending:
			v = audit.VerdictRetry
		}
		audit.Emit(audit.Event{
			Kind: audit.KindJob, Verdict: v, Op: q.name, Corr: corr, Tenant: tenant,
			Detail: fmt.Sprintf("job %d attempt %d: %s", j.id, attempts, stateDetail(state, lastErr)),
		})
	}
}

func stateDetail(s State, lastErr string) string {
	if s == StateDone {
		return "done"
	}
	return string(s) + ": " + lastErr
}

// backoff returns the delay before retry attempt n+1: Backoff doubled
// per failed attempt, capped at MaxBackoff.
func (m *Manager) backoff(attempts int) time.Duration {
	d := m.cfg.Backoff
	for i := 1; i < attempts && d < m.cfg.MaxBackoff; i++ {
		d *= 2
	}
	if d > m.cfg.MaxBackoff {
		d = m.cfg.MaxBackoff
	}
	return d
}

// requeueAfterBackoff returns a failed job to its queue's pending list.
func (m *Manager) requeueAfterBackoff(id uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.timers, id)
	if m.closing || m.killed {
		return
	}
	j, ok := m.jobs[id]
	if !ok || j.state != StatePending {
		return
	}
	q := m.queueOf(j.queue)
	q.pending = append(q.pending, j)
	q.met.pending.Add(1)
	q.cond.Signal()
}

// walAppend appends and flushes one record; errors are swallowed (the
// in-memory state is still correct; durability degrades, it does not
// block the pipeline). Caller holds m.mu.
func (m *Manager) walAppend(r *walRecord) {
	if m.wal == nil {
		return
	}
	if err := m.wal.append(r); err == nil {
		_ = m.wal.w.Flush()
	}
}

// retainLocked bounds the settled-job memory: beyond RetainDone, the
// oldest done/dead jobs are evicted from the index.
func (m *Manager) retainLocked(j *job) {
	m.doneSeq = append(m.doneSeq, j.id)
	for len(m.doneSeq) > m.cfg.RetainDone {
		old := m.doneSeq[0]
		m.doneSeq = m.doneSeq[1:]
		if oj, ok := m.jobs[old]; ok && (oj.state == StateDone || oj.state == StateDead) {
			delete(m.jobs, old)
		}
	}
}

func snapshotOf(j *job) Snapshot {
	return Snapshot{
		ID: j.id, Queue: j.queue, State: j.state,
		Attempts: j.attempts, MaxAttempts: j.maxAttempts, Corr: j.corr, Trace: j.trace,
		Tenant:     j.tenant,
		Error:      j.lastErr,
		Payload:    append([]byte(nil), j.payload...),
		Result:     append([]byte(nil), j.result...),
		EnqueuedAt: j.enqueuedAt, StartedAt: j.startedAt, FinishedAt: j.finishedAt,
	}
}

// Status returns a job's snapshot.
func (m *Manager) Status(id uint64) (Snapshot, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Snapshot{}, false
	}
	return snapshotOf(j), true
}

// Recent returns up to max retained jobs, newest ID first.
func (m *Manager) Recent(max int) []Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	ids := make([]uint64, 0, len(m.jobs))
	for id := range m.jobs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, k int) bool { return ids[i] > ids[k] })
	if max > 0 && len(ids) > max {
		ids = ids[:max]
	}
	out := make([]Snapshot, 0, len(ids))
	for _, id := range ids {
		out = append(out, snapshotOf(m.jobs[id]))
	}
	return out
}

// Dead returns the dead-letter jobs of one queue ("" for all), newest
// first.
func (m *Manager) Dead(queueName string) []Snapshot {
	var out []Snapshot
	for _, s := range m.Recent(0) {
		if s.State == StateDead && (queueName == "" || s.Queue == queueName) {
			out = append(out, s)
		}
	}
	return out
}

// Requeue resurrects a dead-letter job with a fresh attempt budget.
func (m *Manager) Requeue(id uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closing || m.killed {
		return ErrClosed
	}
	j, ok := m.jobs[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownJob, id)
	}
	if j.state != StateDead {
		return fmt.Errorf("jobs: job %d is %s, not dead", id, j.state)
	}
	j.state = StatePending
	j.attempts = 0
	j.lastErr = ""
	j.finishedAt = time.Time{}
	m.walAppend(enqueueRecord(j))
	q := m.queueOf(j.queue)
	q.pending = append(q.pending, j)
	q.met.pending.Add(1)
	q.cond.Signal()
	return nil
}

// QueueStats is one queue's counters for introspection.
type QueueStats struct {
	Queue    string `json:"queue"`
	Workers  int    `json:"workers"`
	Pending  int    `json:"pending"`
	Inflight int    `json:"inflight"`
	Enqueued uint64 `json:"enqueued"`
	Done     uint64 `json:"done"`
	Retried  uint64 `json:"retried"`
	Dead     uint64 `json:"dead"`
	Rejected uint64 `json:"rejected"`
}

// Stats reports every queue, sorted by name.
func (m *Manager) Stats() []QueueStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]QueueStats, 0, len(m.queues))
	for _, q := range m.queues {
		out = append(out, QueueStats{
			Queue: q.name, Workers: q.workers, Pending: len(q.pending), Inflight: q.inflight,
			Enqueued: q.enqueued, Done: q.done, Retried: q.retried, Dead: q.dead, Rejected: q.rejected,
		})
	}
	sort.Slice(out, func(i, k int) bool { return out[i].Queue < out[k].Queue })
	return out
}

// DeadByTenant reports the dead-letter count per owning tenant (the ""
// key aggregates untenanted jobs). Counts survive restarts: replay
// re-counts dead records still present in the WAL.
func (m *Manager) DeadByTenant() map[string]uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]uint64, len(m.deadByTenant))
	for t, n := range m.deadByTenant {
		out[t] = n
	}
	return out
}

// Close drains gracefully: intake stops, workers finish (and ack) the
// jobs they are running, retry timers are cancelled (their jobs stay
// pending in the WAL for the next Open), and the WAL is fsynced and
// closed.
func (m *Manager) Close() error {
	m.mu.Lock()
	if m.closing || m.killed {
		m.mu.Unlock()
		return nil
	}
	m.closing = true
	for _, q := range m.queues {
		q.cond.Broadcast()
	}
	for id, t := range m.timers {
		t.Stop()
		delete(m.timers, id)
	}
	m.mu.Unlock()
	close(m.stopFlush)
	m.wg.Wait()

	m.mu.Lock()
	defer m.mu.Unlock()
	// This manager's contribution to the process-global queue gauges
	// ends here: the backlog it still holds is durable in the WAL, not
	// pending in any live queue. Without this, every drained manager
	// leaks its residue into the shared gauges forever.
	m.zeroGaugesLocked()
	var err error
	if m.wal != nil {
		err = m.wal.close()
		m.wal = nil
	}
	openMu.Lock()
	delete(openManagers, m)
	openMu.Unlock()
	return err
}

// zeroGaugesLocked subtracts this manager's remaining backlog from the
// shared pending gauge. Caller holds m.mu and must guarantee it runs at
// most once per manager (Close and Kill each gate on closing/killed).
// Inflight needs no correction here: every popped job's settle
// decrements the inflight gauge even under Kill.
func (m *Manager) zeroGaugesLocked() {
	for _, q := range m.queues {
		if n := len(q.pending); n > 0 {
			q.met.pending.Add(int64(-n))
		}
	}
}

// Kill simulates a crash for fault testing: workers stop without acking
// the jobs they are running and nothing further reaches the WAL, so a
// subsequent Open on the same directory replays those jobs as pending —
// the at-least-once path the e2e suite proves. The WAL file handle is
// closed as-is (enqueue records were already flushed at enqueue time).
func (m *Manager) Kill() {
	m.mu.Lock()
	if m.closing || m.killed {
		m.mu.Unlock()
		return
	}
	m.killed = true
	m.zeroGaugesLocked()
	for _, q := range m.queues {
		q.cond.Broadcast()
	}
	for id, t := range m.timers {
		t.Stop()
		delete(m.timers, id)
	}
	w := m.wal
	m.wal = nil
	m.mu.Unlock()
	close(m.stopFlush)
	if w != nil {
		_ = w.f.Close() // no final sync: crashes do not fsync
	}
	openMu.Lock()
	delete(openManagers, m)
	openMu.Unlock()
}
