package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func openTest(t *testing.T, dir string) *Manager {
	t.Helper()
	m, err := Open(Config{Dir: dir, Backoff: 2 * time.Millisecond, SyncInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = m.Close() })
	return m
}

func TestEnqueueRunAck(t *testing.T) {
	m := openTest(t, t.TempDir())
	var got atomic.Value
	m.Handle("q", 2, func(j Snapshot) ([]byte, error) {
		got.Store(string(j.Payload))
		return []byte(`{"ok":true}`), nil
	})
	id, err := m.Enqueue("q", []byte(`{"x":1}`), WithCorr(42))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "job done", func() bool {
		s, ok := m.Status(id)
		return ok && s.State == StateDone
	})
	s, _ := m.Status(id)
	if s.Corr != 42 || string(s.Result) != `{"ok":true}` || s.Attempts != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
	if got.Load().(string) != `{"x":1}` {
		t.Fatalf("payload = %q", got.Load())
	}
	// Snapshot JSON inlines the payload/result as raw JSON.
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Result map[string]bool `json:"result"`
	}
	if err := json.Unmarshal(b, &decoded); err != nil || !decoded.Result["ok"] {
		t.Fatalf("snapshot JSON = %s (err %v)", b, err)
	}
}

func TestRetryThenSuccess(t *testing.T) {
	m := openTest(t, t.TempDir())
	var calls atomic.Int32
	m.Handle("flaky", 1, func(j Snapshot) ([]byte, error) {
		if calls.Add(1) < 3 {
			return nil, errors.New("transient")
		}
		return []byte("done"), nil
	})
	id, _ := m.Enqueue("flaky", nil)
	waitFor(t, "retried job done", func() bool {
		s, ok := m.Status(id)
		return ok && s.State == StateDone
	})
	s, _ := m.Status(id)
	if s.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", s.Attempts)
	}
	st := m.Stats()[0]
	if st.Retried != 2 || st.Done != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDeadLetterAfterBudgetAndRequeue(t *testing.T) {
	m := openTest(t, t.TempDir())
	var fail atomic.Bool
	fail.Store(true)
	m.Handle("dlq", 1, func(j Snapshot) ([]byte, error) {
		if fail.Load() {
			return nil, errors.New("boom")
		}
		return []byte("recovered"), nil
	})
	id, _ := m.Enqueue("dlq", nil, WithMaxAttempts(2))
	waitFor(t, "job dead", func() bool {
		s, ok := m.Status(id)
		return ok && s.State == StateDead
	})
	s, _ := m.Status(id)
	if s.Attempts != 2 || s.Error != "boom" {
		t.Fatalf("dead snapshot = %+v", s)
	}
	if dead := m.Dead("dlq"); len(dead) != 1 || dead[0].ID != id {
		t.Fatalf("dead letter = %+v", dead)
	}
	// Requeue with the failure cleared: the job completes.
	fail.Store(false)
	if err := m.Requeue(id); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "requeued job done", func() bool {
		s, ok := m.Status(id)
		return ok && s.State == StateDone
	})
}

func TestPermanentErrorSkipsRetries(t *testing.T) {
	m := openTest(t, t.TempDir())
	var calls atomic.Int32
	m.Handle("p", 1, func(j Snapshot) ([]byte, error) {
		calls.Add(1)
		return nil, Permanent(errors.New("never"))
	})
	id, _ := m.Enqueue("p", nil)
	waitFor(t, "permanent dead", func() bool {
		s, ok := m.Status(id)
		return ok && s.State == StateDead
	})
	if calls.Load() != 1 {
		t.Fatalf("calls = %d, want 1", calls.Load())
	}
}

func TestPanicBurnsOneAttempt(t *testing.T) {
	m := openTest(t, t.TempDir())
	var calls atomic.Int32
	m.Handle("panicky", 1, func(j Snapshot) ([]byte, error) {
		if calls.Add(1) == 1 {
			panic("handler bug")
		}
		return []byte("ok"), nil
	})
	id, _ := m.Enqueue("panicky", nil)
	waitFor(t, "post-panic done", func() bool {
		s, ok := m.Status(id)
		return ok && s.State == StateDone
	})
	if s, _ := m.Status(id); s.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", s.Attempts)
	}
}

func TestAdmissionBound(t *testing.T) {
	m, err := Open(Config{MaxDepth: 2}) // ephemeral, no workers: backlog only
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = m.Close() })
	if _, err := m.Enqueue("full", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Enqueue("full", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Enqueue("full", nil); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third enqueue err = %v, want ErrQueueFull", err)
	}
	if st := m.Stats()[0]; st.Rejected != 1 || st.Pending != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestCrashMidJobReplaysPending is the at-least-once proof: a worker is
// killed mid-job (no ack written) and the job comes back pending on the
// next Open of the same WAL, where it completes.
func TestCrashMidJobReplaysPending(t *testing.T) {
	dir := t.TempDir()
	m1, err := Open(Config{Dir: dir, SyncInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	block := make(chan struct{})
	m1.Handle("work", 1, func(j Snapshot) ([]byte, error) {
		close(started)
		<-block
		return []byte("should never be acked"), nil
	})
	id, err := m1.Enqueue("work", []byte("payload"), WithCorr(7))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	m1.Kill()    // crash: the running job has no ack record
	close(block) // the orphaned worker finishes; its ack must be ignored

	m2, err := Open(Config{Dir: dir, SyncInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = m2.Close() })
	s, ok := m2.Status(id)
	if !ok || s.State != StatePending || s.Corr != 7 || string(s.Payload) != "payload" {
		t.Fatalf("replayed job = %+v ok=%v", s, ok)
	}
	m2.Handle("work", 1, func(j Snapshot) ([]byte, error) {
		return []byte("second run"), nil
	})
	waitFor(t, "replayed job done", func() bool {
		s, ok := m2.Status(id)
		return ok && s.State == StateDone
	})
	if s, _ := m2.Status(id); string(s.Result) != "second run" {
		t.Fatalf("result = %q", s.Result)
	}
}

// TestReplayBacklogBeforeHandle: jobs enqueued in a prior process run
// before any handler existed are executed once a handler registers.
func TestReplayBacklogBeforeHandle(t *testing.T) {
	dir := t.TempDir()
	m1, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	var ids []uint64
	for i := 0; i < 5; i++ {
		id, err := m1.Enqueue("later", []byte(fmt.Sprintf("j%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}

	m2 := openTest(t, dir)
	var mu sync.Mutex
	seen := map[string]bool{}
	m2.Handle("later", 3, func(j Snapshot) ([]byte, error) {
		mu.Lock()
		seen[string(j.Payload)] = true
		mu.Unlock()
		return nil, nil
	})
	waitFor(t, "backlog drained", func() bool {
		for _, id := range ids {
			if s, ok := m2.Status(id); !ok || s.State != StateDone {
				return false
			}
		}
		return true
	})
	if len(seen) != 5 {
		t.Fatalf("seen = %v", seen)
	}
}

// TestCompactionShrinksWAL: settled history does not survive restarts in
// the log file.
func TestCompactionShrinksWAL(t *testing.T) {
	dir := t.TempDir()
	m1, err := Open(Config{Dir: dir, SyncInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	m1.Handle("c", 2, func(j Snapshot) ([]byte, error) { return []byte("r"), nil })
	for i := 0; i < 50; i++ {
		if _, err := m1.Enqueue("c", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "all done", func() bool {
		st := m1.Stats()[0]
		return st.Done == 50
	})
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}
	before, err := os.Stat(walPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	m2 := openTest(t, dir)
	_ = m2
	after, err := os.Stat(walPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size() {
		t.Fatalf("compaction did not shrink WAL: %d -> %d", before.Size(), after.Size())
	}
	// Only the header and the tiny ID high-water meta record survive.
	if after.Size() > int64(len(walMagic))+64 {
		t.Fatalf("compacted WAL should hold only header+meta, got %d bytes", after.Size())
	}
}

// TestIDsMonotonicAcrossRestarts: compaction drops settled jobs, but
// their IDs must never be re-issued — a client polling an old
// /market/jobs/<id> URL must not observe a different job under it.
func TestIDsMonotonicAcrossRestarts(t *testing.T) {
	dir := t.TempDir()
	m1, err := Open(Config{Dir: dir, SyncInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	m1.Handle("m", 1, func(j Snapshot) ([]byte, error) { return nil, nil })
	var last uint64
	for i := 0; i < 3; i++ {
		if last, err = m1.Enqueue("m", nil); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "all done", func() bool { return m1.Stats()[0].Done == 3 })
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}

	// First reopen compacts the settled history away; a second reopen
	// sees only the meta record. Both must keep issuing fresh IDs.
	for i := 0; i < 2; i++ {
		m, err := Open(Config{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		id, err := m.Enqueue("m", nil)
		if err != nil {
			t.Fatal(err)
		}
		if id <= last {
			t.Fatalf("reopen %d re-issued ID %d (last was %d)", i, id, last)
		}
		last = id
		if err := m.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestTornTailThenAppendSurvivesRestart: a torn tail must be truncated
// at replay, not just skipped — otherwise records appended after it
// (O_APPEND lands them beyond the corrupt bytes) are lost on the next
// restart, silently breaking at-least-once.
func TestTornTailThenAppendSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	m1, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	id1, err := m1.Enqueue("t", []byte("first"))
	if err != nil {
		t.Fatal(err)
	}
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(walPath(dir), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xff, 0x00, 0x00, 0x00, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	_ = f.Close()

	// The restart tolerates the tear and keeps accepting enqueues.
	m2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	id2, err := m2.Enqueue("t", []byte("second"))
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Close(); err != nil {
		t.Fatal(err)
	}

	// Both the pre-tear and post-tear jobs replay on the next restart.
	m3 := openTest(t, dir)
	for _, tc := range []struct {
		id      uint64
		payload string
	}{{id1, "first"}, {id2, "second"}} {
		s, ok := m3.Status(tc.id)
		if !ok || s.State != StatePending || string(s.Payload) != tc.payload {
			t.Fatalf("job %d after torn-tail restart = %+v ok=%v", tc.id, s, ok)
		}
	}
}

// TestTornTailTolerated: a torn final record (crash mid-append) is
// dropped without losing the whole records before it.
func TestTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	m1, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	id, err := m1.Enqueue("t", []byte("keep"))
	if err != nil {
		t.Fatal(err)
	}
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}
	// Append garbage: a frame header promising more bytes than exist.
	f, err := os.OpenFile(walPath(dir), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xff, 0x00, 0x00, 0x00, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	_ = f.Close()

	m2 := openTest(t, dir)
	if s, ok := m2.Status(id); !ok || s.State != StatePending || string(s.Payload) != "keep" {
		t.Fatalf("job after torn tail = %+v ok=%v", s, ok)
	}
}

func TestCloseDrainsInflight(t *testing.T) {
	m, err := Open(Config{Dir: t.TempDir(), SyncInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	release := make(chan struct{})
	m.Handle("drain", 1, func(j Snapshot) ([]byte, error) {
		close(started)
		<-release
		return []byte("flushed"), nil
	})
	id, _ := m.Enqueue("drain", nil)
	<-started
	done := make(chan error, 1)
	go func() { done <- m.Close() }()
	select {
	case <-done:
		t.Fatal("Close returned while a job was in flight")
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// The in-flight job was acked before shutdown.
	if s, ok := m.Status(id); !ok || s.State != StateDone {
		t.Fatalf("drained job = %+v ok=%v", s, ok)
	}
	if _, err := m.Enqueue("drain", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("enqueue after close err = %v", err)
	}
}

func TestWALRecordRoundTrip(t *testing.T) {
	recs := []*walRecord{
		{op: opEnqueue, id: 1, queue: "q", payload: []byte("p"), corr: 9, maxAttempts: 5, ts: 123456789},
		{op: opFail, id: 2, attempts: 3, errMsg: "boom", ts: -1},
		{op: opAck, id: 1 << 60, result: []byte(`{"a":1}`), ts: time.Now().UnixNano()},
		{op: opDead, id: 7, attempts: 5, errMsg: "gone", ts: 0},
		{op: opMeta, id: 1 << 40},
	}
	for _, r := range recs {
		got, err := decodeRecord(encodeRecord(r))
		if err != nil {
			t.Fatalf("decode(%+v): %v", r, err)
		}
		if got.op != r.op || got.id != r.id || got.queue != r.queue ||
			string(got.payload) != string(r.payload) || got.corr != r.corr ||
			got.maxAttempts != r.maxAttempts || got.attempts != r.attempts ||
			got.errMsg != r.errMsg || string(got.result) != string(r.result) || got.ts != r.ts {
			t.Fatalf("round trip: %+v != %+v", got, r)
		}
	}
	if _, err := decodeRecord(nil); err == nil {
		t.Fatal("decode(nil) succeeded")
	}
	if _, err := decodeRecord([]byte{99}); err == nil {
		t.Fatal("decode(unknown op) succeeded")
	}
}
