package jobs

import (
	"sync"

	"sdnshield/internal/obs"
)

// queueMetrics is one queue's instrument bundle in the process-wide
// registry, created once per queue name and cached (instrument lookup
// is a lock + map hit; the worker loop must not pay it per job).
type queueMetrics struct {
	enqueued  *obs.Counter
	completed *obs.Counter
	retries   *obs.Counter
	deadC     *obs.Counter
	rejected  *obs.Counter
	pending   *obs.Gauge
	inflight  *obs.Gauge
	exec      *obs.Histogram
	wait      *obs.Histogram
}

var (
	metricsMu sync.Mutex
	metricsBy = make(map[string]*queueMetrics)
)

func metricsFor(queue string) *queueMetrics {
	metricsMu.Lock()
	defer metricsMu.Unlock()
	if m, ok := metricsBy[queue]; ok {
		return m
	}
	reg := obs.Default()
	m := &queueMetrics{
		enqueued: reg.Counter("sdnshield_jobs_enqueued_total",
			"Jobs admitted to a queue.", "queue", queue),
		completed: reg.Counter("sdnshield_jobs_completed_total",
			"Jobs acked after a successful attempt.", "queue", queue),
		retries: reg.Counter("sdnshield_jobs_retries_total",
			"Failed attempts that were rescheduled with backoff.", "queue", queue),
		deadC: reg.Counter("sdnshield_jobs_dead_total",
			"Jobs dead-lettered after exhausting attempts or a permanent error.", "queue", queue),
		rejected: reg.Counter("sdnshield_jobs_rejected_total",
			"Enqueues refused at the admission bound (backpressure).", "queue", queue),
		pending: reg.Gauge("sdnshield_jobs_pending",
			"Jobs waiting in a queue's backlog.", "queue", queue),
		inflight: reg.Gauge("sdnshield_jobs_inflight",
			"Jobs currently executing on a queue's workers.", "queue", queue),
		exec: reg.Histogram("sdnshield_jobs_exec_seconds",
			"Handler execution latency per attempt.", "queue", queue),
		wait: reg.Histogram("sdnshield_jobs_wait_seconds",
			"Queue residency: enqueue to attempt start.", "queue", queue),
	}
	metricsBy[queue] = m
	return m
}
