package jobs

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
)

// The queue's durability layer is a single append-only write-ahead log
// under DIR/queue.wal. Every state transition a crash must not lose is
// one framed record:
//
//	enqueue  — the job exists (payload, queue, attempt budget)
//	fail     — an attempt failed; the attempt counter advanced
//	ack      — the job completed; its result is retained
//	dead     — the job exhausted its attempts (dead-letter)
//	meta     — the ID high-water mark; compaction drops settled jobs'
//	           enqueue records, so this keeps issued IDs monotonic
//	           across restarts
//
// A job whose last record is enqueue or fail is live: replay returns it
// to its queue's pending list, which is exactly the at-least-once
// guarantee — a worker that dies mid-job never wrote the ack, so the
// job runs again. Records are length-prefixed and CRC-guarded; replay
// stops at the first torn record (a crash mid-append) and the file is
// truncated back to the last whole record.

// walMagic is the file header; a version bump changes the trailing byte.
const walMagic = "sdnjobswal1\n"

// walOp discriminates record types.
type walOp uint8

// Record opcodes.
const (
	opEnqueue walOp = 1
	opAck     walOp = 2
	opFail    walOp = 3
	opDead    walOp = 4
	opMeta    walOp = 5
)

// walRecord is one WAL entry. Which fields are meaningful depends on the
// op: enqueue carries queue/payload/corr/maxAttempts, fail carries
// attempts/errMsg, ack carries result, dead carries attempts/errMsg,
// meta carries only id (the highest job ID ever issued).
type walRecord struct {
	op          walOp
	id          uint64
	queue       string
	payload     []byte
	corr        uint64
	maxAttempts uint32
	attempts    uint32
	errMsg      string
	result      []byte
	ts          int64 // unix nanos at append time

	// Span context of the operation that enqueued the job, so a worker
	// restarted from disk continues the original trace. The fields ride
	// as an optional suffix after ts: records written before tracing
	// existed (or for untraced jobs) omit them and decode as zero, which
	// keeps the WAL readable in both directions without a magic bump.
	traceID    uint64
	spanID     uint64
	spanParent uint64

	// Tenant owning the job (multi-tenant managers). Rides as a further
	// optional suffix after the trace triple; a record carrying a tenant
	// forces the trace triple (possibly all-zero) so decode order stays
	// unambiguous. Pre-tenant records decode with tenant == "".
	tenant string
}

// errBadRecord reports a record body that does not decode.
var errBadRecord = errors.New("jobs: bad WAL record")

// maxFieldLen bounds every variable-length field so a corrupt length
// prefix cannot ask the decoder for gigabytes.
const maxFieldLen = 16 << 20

// encodeRecord renders the record body (unframed). The layout is
// versioned by walMagic: op byte, then uvarint-framed fields in fixed
// order.
func encodeRecord(r *walRecord) []byte {
	var tmp [binary.MaxVarintLen64]byte
	buf := make([]byte, 0, 32+len(r.queue)+len(r.payload)+len(r.errMsg)+len(r.result))
	buf = append(buf, byte(r.op))
	putUvarint := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		buf = append(buf, tmp[:n]...)
	}
	putBytes := func(b []byte) {
		putUvarint(uint64(len(b)))
		buf = append(buf, b...)
	}
	putUvarint(r.id)
	putBytes([]byte(r.queue))
	putBytes(r.payload)
	putUvarint(r.corr)
	putUvarint(uint64(r.maxAttempts))
	putUvarint(uint64(r.attempts))
	putBytes([]byte(r.errMsg))
	putBytes(r.result)
	n := binary.PutVarint(tmp[:], r.ts)
	buf = append(buf, tmp[:n]...)
	// Optional trace suffix: written only when a context exists, so
	// untraced records stay byte-identical to the pre-trace format. A
	// tenant forces the triple (even all-zero) because it decodes after.
	if r.traceID != 0 || r.spanID != 0 || r.spanParent != 0 || r.tenant != "" {
		putUvarint(r.traceID)
		putUvarint(r.spanID)
		putUvarint(r.spanParent)
		if r.tenant != "" {
			putBytes([]byte(r.tenant))
		}
	}
	return buf
}

// decodeRecord parses a record body produced by encodeRecord. It must
// never panic on arbitrary input (FuzzJobDecode enforces this) and must
// round-trip: decodeRecord(encodeRecord(r)) == r.
func decodeRecord(b []byte) (*walRecord, error) {
	if len(b) < 1 {
		return nil, errBadRecord
	}
	r := &walRecord{op: walOp(b[0])}
	if r.op < opEnqueue || r.op > opMeta {
		return nil, fmt.Errorf("%w: unknown op %d", errBadRecord, r.op)
	}
	b = b[1:]
	readUvarint := func() (uint64, error) {
		v, n := binary.Uvarint(b)
		if n <= 0 {
			return 0, errBadRecord
		}
		b = b[n:]
		return v, nil
	}
	readBytes := func() ([]byte, error) {
		n, err := readUvarint()
		if err != nil {
			return nil, err
		}
		if n > maxFieldLen || n > uint64(len(b)) {
			return nil, errBadRecord
		}
		out := b[:n]
		b = b[n:]
		return out, nil
	}
	var err error
	if r.id, err = readUvarint(); err != nil {
		return nil, err
	}
	q, err := readBytes()
	if err != nil {
		return nil, err
	}
	r.queue = string(q)
	if r.payload, err = readBytes(); err != nil {
		return nil, err
	}
	if len(r.payload) == 0 {
		r.payload = nil
	}
	if r.corr, err = readUvarint(); err != nil {
		return nil, err
	}
	ma, err := readUvarint()
	if err != nil || ma > math.MaxUint32 {
		return nil, errBadRecord
	}
	r.maxAttempts = uint32(ma)
	at, err := readUvarint()
	if err != nil || at > math.MaxUint32 {
		return nil, errBadRecord
	}
	r.attempts = uint32(at)
	e, err := readBytes()
	if err != nil {
		return nil, err
	}
	r.errMsg = string(e)
	if r.result, err = readBytes(); err != nil {
		return nil, err
	}
	if len(r.result) == 0 {
		r.result = nil
	}
	ts, n := binary.Varint(b)
	if n <= 0 {
		return nil, errBadRecord
	}
	r.ts = ts
	b = b[n:]
	if len(b) == 0 {
		return r, nil // pre-trace record: context decodes as zero
	}
	if r.traceID, err = readUvarint(); err != nil {
		return nil, err
	}
	if r.spanID, err = readUvarint(); err != nil {
		return nil, err
	}
	if r.spanParent, err = readUvarint(); err != nil {
		return nil, err
	}
	if len(b) == 0 {
		return r, nil // pre-tenant record
	}
	t, err := readBytes()
	if err != nil {
		return nil, err
	}
	r.tenant = string(t)
	if len(b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", errBadRecord, len(b))
	}
	return r, nil
}

// wal is the open log file with a buffered writer; appends are framed
// (u32le length, u32le CRC-32, body) and group-committed by the
// manager's flusher.
type wal struct {
	f *os.File
	w *bufio.Writer
}

// walPath returns the log path under a queue directory.
func walPath(dir string) string { return filepath.Join(dir, "queue.wal") }

// newBufWriter sizes the WAL's buffered writer consistently across the
// append and compaction paths.
func newBufWriter(f *os.File) *bufio.Writer { return bufio.NewWriterSize(f, 64<<10) }

// openWAL opens (creating if needed) the log for appending, writing the
// header on a fresh file.
func openWAL(dir string) (*wal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(walPath(dir), os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		_ = f.Close()
		return nil, err
	}
	w := &wal{f: f, w: newBufWriter(f)}
	if st.Size() == 0 {
		if _, err := w.w.WriteString(walMagic); err != nil {
			_ = f.Close()
			return nil, err
		}
	}
	return w, nil
}

// append frames and buffers one record; the caller decides when to
// flush/sync (group commit).
func (w *wal) append(r *walRecord) error {
	body := encodeRecord(r)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(body))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.w.Write(body)
	return err
}

// sync flushes the buffer and fsyncs the file.
func (w *wal) sync() error {
	if err := w.w.Flush(); err != nil {
		return err
	}
	return w.f.Sync()
}

// close syncs and closes the file.
func (w *wal) close() error {
	serr := w.sync()
	cerr := w.f.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// replayWAL reads every whole record from a log file, returning the
// records in append order and the offset of the first torn/corrupt
// frame (== file size when the log is clean). A missing file replays
// empty.
func replayWAL(dir string) (recs []*walRecord, goodOffset int64, err error) {
	f, err := os.Open(walPath(dir))
	if os.IsNotExist(err) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 64<<10)
	magic := make([]byte, len(walMagic))
	if _, err := io.ReadFull(br, magic); err != nil || string(magic) != walMagic {
		// Unrecognized header: treat as empty (the manager rewrites it).
		return nil, 0, nil
	}
	goodOffset = int64(len(walMagic))
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return recs, goodOffset, nil // clean EOF or torn header
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if n > maxFieldLen {
			return recs, goodOffset, nil
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(br, body); err != nil {
			return recs, goodOffset, nil // torn body
		}
		if crc32.ChecksumIEEE(body) != sum {
			return recs, goodOffset, nil // corrupt frame
		}
		rec, err := decodeRecord(body)
		if err != nil {
			return recs, goodOffset, nil
		}
		recs = append(recs, rec)
		goodOffset += int64(len(hdr)) + int64(n)
	}
}
